package loadgen

import (
	"math"
	"testing"

	"persistmem/internal/sim"
)

// TestPoissonOfferedLoadWithinOnePercent pins the acceptance criterion:
// the measured offered load of the Poisson generator is within 1% of
// the configured λ. 200k draws put the sampling error near 0.2%, so the
// margin is real, not luck.
func TestPoissonOfferedLoadWithinOnePercent(t *testing.T) {
	for _, rate := range []float64{100, 1000, 25000} {
		for seed := int64(1); seed <= 3; seed++ {
			eng := sim.NewEngine(seed)
			p := NewPoisson(eng.DeriveRand("arrivals"), rate)
			const n = 200_000
			var total sim.Time
			for i := 0; i < n; i++ {
				total += p.Next()
			}
			measured := float64(n) / total.Seconds()
			if rel := math.Abs(measured-rate) / rate; rel > 0.01 {
				t.Errorf("seed %d rate %.0f: measured %.2f/s, off by %.2f%%",
					seed, rate, measured, 100*rel)
			}
		}
	}
}

func TestPoissonDeterministic(t *testing.T) {
	draw := func() []sim.Time {
		p := NewPoisson(sim.NewEngine(7).DeriveRand("arrivals"), 500)
		out := make([]sim.Time, 100)
		for i := range out {
			out[i] = p.Next()
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestPoissonRejectsBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for rate 0")
		}
	}()
	NewPoisson(sim.NewEngine(1).DeriveRand("arrivals"), 0)
}

// TestMMPPMeanRate checks the duty-cycle-weighted mean and that the
// long-run measured rate converges to it.
func TestMMPPMeanRate(t *testing.T) {
	eng := sim.NewEngine(3)
	// 2000/s for a mean 50ms burst, silence for a mean 150ms: 500/s.
	m := NewMMPP(eng.DeriveRand("arrivals"), 2000, 0, 50*sim.Millisecond, 150*sim.Millisecond)
	if got := m.MeanRate(); math.Abs(got-500) > 1e-9 {
		t.Fatalf("MeanRate = %v, want 500", got)
	}
	const n = 100_000
	var total sim.Time
	for i := 0; i < n; i++ {
		total += m.Next()
	}
	measured := float64(n) / total.Seconds()
	if rel := math.Abs(measured-500) / 500; rel > 0.05 {
		t.Errorf("measured %.2f/s, off the 500/s mean by %.2f%%", measured, 100*rel)
	}
}

// TestMMPPBursts verifies the on/off structure: with a silent off state
// the gap distribution must be bimodal — many short intra-burst gaps
// plus rare inter-burst gaps far above the on-state mean.
func TestMMPPBursts(t *testing.T) {
	eng := sim.NewEngine(5)
	m := NewMMPP(eng.DeriveRand("arrivals"), 4000, 0, 20*sim.Millisecond, 80*sim.Millisecond)
	const n = 50_000
	onMeanGap := sim.Second / 4000 // 250µs
	long, short := 0, 0
	for i := 0; i < n; i++ {
		g := m.Next()
		if g > 20*onMeanGap {
			long++ // must have crossed at least one off sojourn
		} else {
			short++
		}
	}
	if long == 0 {
		t.Error("no inter-burst gaps: MMPP degenerated to Poisson")
	}
	if short < n*9/10 {
		t.Errorf("only %d/%d intra-burst gaps; bursts missing", short, n)
	}
	// Inter-burst gaps should be rare (one per burst of ~80 arrivals).
	if long > n/10 {
		t.Errorf("%d/%d long gaps; off state not silent", long, n)
	}
}

func TestMMPPValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	for name, fn := range map[string]func(){
		"zero-on-rate": func() {
			NewMMPP(eng.DeriveRand("a"), 0, 0, sim.Millisecond, sim.Millisecond)
		},
		"negative-off-rate": func() {
			NewMMPP(eng.DeriveRand("b"), 1, -1, sim.Millisecond, sim.Millisecond)
		},
		"zero-sojourn": func() {
			NewMMPP(eng.DeriveRand("c"), 1, 0, 0, sim.Millisecond)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestZipfSkew checks the skew actually skews: the hottest key must be
// drawn far more often than a uniform draw would allow, and draws stay
// inside the keyspace.
func TestZipfSkew(t *testing.T) {
	eng := sim.NewEngine(2)
	const keyspace = 1 << 16
	k := NewZipfKeys(eng.DeriveRand("keys"), 1.2, 1, keyspace)
	const n = 100_000
	counts := map[uint64]int{}
	for i := 0; i < n; i++ {
		key := k.Next()
		if key >= keyspace {
			t.Fatalf("key %d outside keyspace %d", key, keyspace)
		}
		counts[key]++
	}
	uniform := float64(n) / float64(keyspace)
	if hot := float64(counts[0]); hot < 100*uniform {
		t.Errorf("hottest key drawn %v times; uniform would be %.2f — skew too weak", hot, uniform)
	}
}

func TestZipfValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	for name, fn := range map[string]func(){
		"zero-keyspace": func() { NewZipfKeys(eng.DeriveRand("a"), 1.2, 1, 0) },
		"s-below-one":   func() { NewZipfKeys(eng.DeriveRand("b"), 0.5, 1, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
