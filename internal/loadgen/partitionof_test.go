package loadgen

import (
	"testing"

	"persistmem/internal/ods"
)

// TestPartitionOfZipfDistributionPinned pins the routing property every
// sharded sweep (and the cross-shard two-phase mix) rides on. Under the
// harness's Zipf(1.2, 1) skew at seed scale, ods.Store.PartitionOf must
// spread the key *space* evenly — no shard owns more than 2x its fair
// share of the distinct keys drawn, at every count from 1 to 16 — while
// keeping the skew itself visible in draw mass: shard 0 holds key 0,
// the hottest key, and must be the strictly hottest shard. Were the
// distinct-key spread ever to concentrate, the shard sweep's scaling
// and the cross-shard sweep's round-robin participant choice would both
// silently degenerate to single-shard traffic.
func TestPartitionOfZipfDistributionPinned(t *testing.T) {
	const draws = 200_000
	const keyspace = 1 << 20 // DefaultOpenConfig's keyspace
	for _, shards := range []int{1, 2, 4, 8, 16} {
		opts := ods.DefaultOptions()
		opts.Files = []ods.FileSpec{{Name: "TRADES", Partitions: shards}}
		opts.PMRegionBytes = 8 << 20
		s := ods.Build(opts)
		keys := NewZipfKeys(s.Eng.DeriveRand("loadgen-keys"), 1.2, 1, keyspace)
		mass := make([]int, shards)
		distinct := make([]int, shards)
		seen := make(map[uint64]bool, draws)
		for i := 0; i < draws; i++ {
			k := keys.Next()
			sh := s.PartitionOf("TRADES", k)
			mass[sh]++
			if !seen[k] {
				seen[k] = true
				distinct[sh]++
			}
		}
		fair := len(seen) / shards
		for sh, n := range distinct {
			if n == 0 {
				t.Errorf("%d shards: shard %d owns no drawn keys", shards, sh)
			}
			if n > 2*fair {
				t.Errorf("%d shards: shard %d owns %d of %d distinct keys (> 2x fair share %d)",
					shards, sh, n, len(seen), fair)
			}
		}
		if shards > 1 {
			for sh := 1; sh < shards; sh++ {
				if mass[sh] >= mass[0] {
					t.Errorf("%d shards: shard %d (%d draws) at least as hot as shard 0 (%d) — Zipf skew invisible",
						shards, sh, mass[sh], mass[0])
				}
			}
		}
	}
}
