package loadgen

import (
	"testing"

	"persistmem/internal/ods"
	"persistmem/internal/sim"
)

// openInvarianceRun drives one small open-loop cell on a partitioned
// store with nodeLPs LPs drained by the same number of workers, and
// returns the rendered result plus the store-wide event count.
func openInvarianceRun(t *testing.T, seed int64, nodeLPs int) (string, uint64) {
	t.Helper()
	opts := ods.DefaultOptions()
	opts.Seed = seed
	opts.NodeLPs = nodeLPs
	s := ods.Build(opts)
	defer s.Shutdown()
	pend := StartOpen(s, OpenConfig{
		Rate:   2000,
		Window: 100 * sim.Millisecond,
	})
	s.Part.Run(nodeLPs)
	res := pend.Collect()
	return res.String(), res.Events
}

// TestOpenLoopPartitionInvariance is the open-loop differential gate: the
// same seed must render byte-identical summaries — and execute the same
// number of events — at 1, 2 and 4 node-LPs. The harness is pinned to
// node 0 in partitioned mode, so any divergence means the cross-LP seam
// leaked schedule state that depends on the partition count.
func TestOpenLoopPartitionInvariance(t *testing.T) {
	for seed := int64(1); seed <= 2; seed++ {
		refStr, refEvents := openInvarianceRun(t, seed, 1)
		if refEvents == 0 {
			t.Fatalf("seed %d: reference run executed no events", seed)
		}
		for _, lps := range []int{2, 4} {
			gotStr, gotEvents := openInvarianceRun(t, seed, lps)
			if gotStr != refStr {
				t.Errorf("seed %d: %d-LP summary diverged from 1-LP:\n--- 1 LP ---\n%s\n--- %d LPs ---\n%s",
					seed, lps, refStr, lps, gotStr)
			}
			if gotEvents != refEvents {
				t.Errorf("seed %d: %d LPs executed %d events, 1 LP executed %d",
					seed, lps, gotEvents, refEvents)
			}
		}
	}
}
