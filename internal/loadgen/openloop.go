// Open-loop, shard-aware saturation harness.
//
// The closed-loop driver in loadgen.go issues a new transaction only
// when the previous one completes, so its offered load can never exceed
// the store's capacity and the latency it reports hides queueing
// entirely. The open-loop harness decouples the two: an arrival process
// (Poisson or bursty MMPP) generates transaction arrivals on a virtual
// clock for a modeled population of logical clients, each arrival is
// routed by key skew to its DP2 partition's admission queue, and a
// bounded pool of worker processes drains the queues. Latency is
// measured from *arrival* (not dispatch), so queue wait is part of the
// sojourn and the throughput-vs-p99 curve shows the saturation knee.
package loadgen

import (
	"fmt"
	"math/rand"

	"persistmem/internal/cluster"
	"persistmem/internal/hist"
	"persistmem/internal/metrics"
	"persistmem/internal/ods"
	"persistmem/internal/sim"
)

// OpenConfig shapes one open-loop run.
type OpenConfig struct {
	// File names the key-sequenced file driven; empty means the store's
	// first file. The file's partition count is the shard count: every
	// arrival is routed to a shard via ods.Store.PartitionOf.
	File string
	// Rate is the offered load in transactions per virtual second.
	Rate float64
	// Burst switches the arrival process from stationary Poisson to an
	// on/off MMPP with the same long-run mean rate.
	Burst bool
	// BurstFactor is the on-state rate multiplier (default 4, which with
	// the default 1:3 duty cycle makes the off state fully silent).
	BurstFactor float64
	// BurstOn and BurstOff are the mean sojourns of the on and off
	// states (defaults 50ms / 150ms).
	BurstOn, BurstOff sim.Time
	// Window is the arrival window in virtual time: arrivals are
	// generated for exactly this long, then the workers drain what is
	// queued. Offered load is Arrivals/Window.
	Window sim.Time
	// VirtualClients is the modeled logical client population. Each
	// arrival is stamped with a client drawn uniformly from it; because
	// arrivals never wait for completions, the population behaves as
	// effectively infinite — millions of clients cost nothing.
	VirtualClients int
	// WorkersPerShard bounds the real executor processes per shard (the
	// cluster.Process pool that actually drives sessions).
	WorkersPerShard int
	// OpsPerTxn is the number of data operations per transaction.
	OpsPerTxn int
	// ReadFraction in [0,1] is the probability an operation is a browse
	// read of a committed key on the same shard rather than an insert.
	ReadFraction float64
	// ValueBytes sizes inserted values.
	ValueBytes int
	// Keyspace and ZipfS/ZipfV shape the key skew: logical keys are
	// Zipf(s, v)-distributed over [0, Keyspace), so low keys — and the
	// shards they route to — are hot.
	Keyspace uint64
	ZipfS    float64
	ZipfV    float64
	// MaxQueue bounds each shard's admission queue; an arrival finding
	// MaxQueue waiting is dropped (counted, never executed). 0 means
	// unbounded.
	MaxQueue int
	// CrossShardPct in [0,100] is the percentage of write transactions
	// that spread their inserts round-robin across every shard and
	// commit under the TMF's cross-shard two-phase outcome-record
	// protocol. Zero (the default) draws no extra randomness, so the
	// run's schedule is byte-identical to one built before the knob
	// existed.
	CrossShardPct float64
}

// DefaultOpenConfig returns a moderate Poisson configuration.
func DefaultOpenConfig() OpenConfig {
	return OpenConfig{
		Rate:            1000,
		BurstFactor:     4,
		BurstOn:         50 * sim.Millisecond,
		BurstOff:        150 * sim.Millisecond,
		Window:          sim.Second,
		VirtualClients:  1_000_000,
		WorkersPerShard: 4,
		OpsPerTxn:       8,
		ReadFraction:    0.2,
		ValueBytes:      1024,
		Keyspace:        1 << 20,
		ZipfS:           1.2,
		ZipfV:           1,
	}
}

// ShardStats is the per-DP2-partition ledger of an open-loop run. Shard
// membership is exactly ods.Store.PartitionOf(file, key), so a hot key
// range shows up as one shard's Arrivals, queue depth and p99 running
// away from the others'. The txn-outcome identity holds per shard:
// Txns == Commits + Aborts + Errors, and Arrivals == Txns + Drops +
// still-queued (zero once the run drains).
type ShardStats struct {
	Shard    int
	Arrivals int64
	Drops    int64
	Txns     int64
	Commits  int64
	Aborts   int64
	Errors   int64
	// MaxDepth is the largest admission-queue depth an arrival observed.
	MaxDepth int
	// Sojourn is arrival→commit latency (queue wait included).
	Sojourn hist.H
}

// OpenResult aggregates an open-loop run.
//
// Counter taxonomy (disjoint by construction):
//
//	Arrivals == Txns + Drops
//	Txns     == Commits + Aborts + Errors
//
// Commits are transactions whose Commit returned nil; Aborts ended in a
// known not-committed outcome (an insert failure followed by a client
// abort, or a Commit that returned an error); Errors never became a
// transaction at all (Begin failed). Reads and ReadErrors count browse
// read operations — an op-level ledger, deliberately outside the
// txn-level identity.
type OpenResult struct {
	// Window is the configured arrival window; Elapsed stretches from
	// the run start to the last worker's last completion (the drain of
	// the backlog, which past saturation exceeds Window).
	Window  sim.Time
	Elapsed sim.Time

	Arrivals int64
	Drops    int64
	Txns     int64
	Commits  int64
	Aborts   int64
	Errors   int64

	Inserts    int64
	Reads      int64
	ReadErrors int64
	// CrossCommits counts committed transactions that ran under the
	// cross-shard two-phase protocol (a subset of Commits).
	CrossCommits int64

	// Sojourn is arrival→commit (queueing included) — the open-loop
	// latency. Service is dispatch→commit (queueing excluded). QueueWait
	// is arrival→dispatch for every executed transaction. Sojourn ≈
	// QueueWait + Service, sampled at commit.
	Sojourn     hist.H
	Service     hist.H
	QueueWait   hist.H
	ReadLatency hist.H
	// Depth samples the target shard's admission-queue depth at every
	// arrival (an integer histogram in disguise).
	Depth hist.H

	Shards []ShardStats
	Events uint64
}

// Offered returns the measured offered load in transactions per virtual
// second — generated arrivals (dropped ones included) over the arrival
// window.
func (r *OpenResult) Offered() float64 {
	if r.Window == 0 {
		return 0
	}
	return float64(r.Arrivals) / r.Window.Seconds()
}

// Delivered returns the goodput in committed transactions per virtual
// second of total elapsed (window + drain) time. Past saturation
// Delivered plateaus at capacity while Offered keeps climbing.
func (r *OpenResult) Delivered() float64 {
	if r.Elapsed == 0 {
		return 0
	}
	return float64(r.Commits) / r.Elapsed.Seconds()
}

// String renders the run summary.
func (r *OpenResult) String() string {
	return fmt.Sprintf(
		"window %v (elapsed %v): offered %.1f/s, delivered %.1f/s; %d arrivals, %d drops, %d txns = %d commits + %d aborts + %d errors\n  sojourn: %s\n  service: %s\n  queue:   %s",
		r.Window, r.Elapsed, r.Offered(), r.Delivered(),
		r.Arrivals, r.Drops, r.Txns, r.Commits, r.Aborts, r.Errors,
		r.Sojourn.Summary(), r.Service.Summary(), r.QueueWait.Summary())
}

// openCrossBase offsets the per-home-shard cross-shard key sequence
// blocks far above any key the local nextSeq sequences can reach at
// simulation scale.
const openCrossBase = uint64(1) << 40

// arrival is one generated transaction request, carried from the
// generator through a shard's admission queue to a worker. Records are
// recycled through OpenPending.free once the worker retires them.
type arrival struct {
	at     sim.Time
	client uint64
	key    uint64
}

// openShard is one partition's queue and ledger.
type openShard struct {
	q       *sim.Chan
	stats   ShardStats
	written []uint64 // committed keys, the shard's read working set
	nextSeq uint64   // per-shard insert-key sequence
	// crossSeq numbers this home shard's cross-shard inserts. Each home
	// shard owns a disjoint block of the sequence space (see runTxn), so
	// cross-shard keys synthesized by different homes never collide with
	// each other or with any shard's local nextSeq keys.
	crossSeq uint64
}

// OpenPending is an open-loop run whose processes have been spawned but
// whose engine has not been driven yet — the spawn/collect split that
// lets the parallel LP cluster drain engines the harness did not build
// itself (the same pattern as hotstock.Start).
type OpenPending struct {
	s      *ods.Store
	cfg    OpenConfig
	res    OpenResult
	shards []openShard
	doneAt []sim.Time
	t0     sim.Time
	ld     *metrics.LoadSpans

	free []*arrival //simlint:box -- arrival-record pool (generator gets, workers put)
}

//simlint:hotpath
func (op *OpenPending) newArrival() *arrival {
	if n := len(op.free); n > 0 {
		a := op.free[n-1]
		op.free = op.free[:n-1]
		return a
	}
	return &arrival{}
}

//simlint:hotpath
func (op *OpenPending) putArrival(a *arrival) {
	*a = arrival{}
	op.free = append(op.free, a)
}

// withDefaults fills zero fields from DefaultOpenConfig and resolves
// the driven file.
func (cfg OpenConfig) withDefaults(s *ods.Store) OpenConfig {
	def := DefaultOpenConfig()
	if cfg.File == "" {
		cfg.File = s.Opts.Files[0].Name
	}
	if cfg.Rate <= 0 {
		cfg.Rate = def.Rate
	}
	if cfg.BurstFactor <= 0 {
		cfg.BurstFactor = def.BurstFactor
	}
	if cfg.BurstOn <= 0 {
		cfg.BurstOn = def.BurstOn
	}
	if cfg.BurstOff <= 0 {
		cfg.BurstOff = def.BurstOff
	}
	if cfg.Window <= 0 {
		cfg.Window = def.Window
	}
	if cfg.VirtualClients <= 0 {
		cfg.VirtualClients = def.VirtualClients
	}
	if cfg.WorkersPerShard <= 0 {
		cfg.WorkersPerShard = def.WorkersPerShard
	}
	if cfg.OpsPerTxn <= 0 {
		cfg.OpsPerTxn = def.OpsPerTxn
	}
	if cfg.ValueBytes <= 0 {
		cfg.ValueBytes = def.ValueBytes
	}
	if cfg.Keyspace == 0 {
		cfg.Keyspace = def.Keyspace
	}
	if cfg.ZipfS <= 1 {
		cfg.ZipfS = def.ZipfS
	}
	if cfg.ZipfV < 1 {
		cfg.ZipfV = def.ZipfV
	}
	return cfg
}

// arrivals builds the run's arrival process from the config.
func (cfg OpenConfig) arrivals(s *ods.Store) Arrivals {
	rng := s.Eng.DeriveRand("loadgen-arrivals")
	if !cfg.Burst {
		return NewPoisson(rng, cfg.Rate)
	}
	// Preserve the long-run mean: with duty cycle d = on/(on+off) and
	// on-rate f·Rate, the off state offers Rate·(1−d·f)/(1−d), clamped
	// at fully silent when the factor saturates the duty cycle.
	d := float64(cfg.BurstOn) / float64(cfg.BurstOn+cfg.BurstOff)
	onRate := cfg.Rate * cfg.BurstFactor
	offRate := cfg.Rate * (1 - d*cfg.BurstFactor) / (1 - d)
	if offRate < 0 {
		offRate = 0
	}
	return NewMMPP(rng, onRate, offRate, cfg.BurstOn, cfg.BurstOff)
}

// StartOpen spawns an open-loop run's generator and worker processes on
// s without running the engine. Drive the engine to completion
// (s.Eng.Run, or a parallel cluster run), then call Collect.
func StartOpen(s *ods.Store, cfg OpenConfig) *OpenPending {
	cfg = cfg.withDefaults(s)
	nShards := s.Partitions(cfg.File)
	if nShards == 0 {
		panic(fmt.Sprintf("loadgen: unknown file %q", cfg.File))
	}
	op := &OpenPending{
		s:      s,
		cfg:    cfg,
		shards: make([]openShard, nShards),
		doneAt: make([]sim.Time, nShards*cfg.WorkersPerShard),
	}
	if m := s.Opts.Metrics; m != nil {
		op.ld = m.Load
	}
	op.res.Window = cfg.Window
	op.res.Shards = make([]ShardStats, nShards)
	for i := range op.shards {
		op.shards[i].q = s.Eng.NewChan(fmt.Sprintf("loadq-%d", i))
		op.shards[i].stats.Shard = i
	}

	// Workers: a bounded executor pool, WorkersPerShard per shard,
	// spread round-robin over the CPUs. In partitioned mode every
	// harness process is pinned to CPU 0 instead: the admission queues
	// are sim.Chans on engine 0, and a sim.Chan may only be touched
	// from its own engine. Pinning applies whenever the store is
	// partitioned — at NodeLPs=1 too — so the modeled schedule is
	// identical at every partition count (the store side still spreads
	// its services over all nodes; only the load harness is pinned).
	widx := 0
	for sh := 0; sh < nShards; sh++ {
		for w := 0; w < cfg.WorkersPerShard; w++ {
			sh, w, widx := sh, w, widx
			cpu := widx % s.Opts.CPUs
			if s.Part != nil {
				cpu = 0
			}
			s.Cl.CPU(cpu).Spawn(fmt.Sprintf("loadw-%d-%d", sh, w), func(p *cluster.Process) {
				op.worker(p, sh, w)
				op.doneAt[widx] = p.Now()
			})
			widx++
		}
	}

	// The generator: one process modeling the whole virtual-client
	// population's arrival stream.
	s.Cl.CPU(0).Spawn("loadgen-arrivals", func(p *cluster.Process) {
		op.generate(p)
	})
	return op
}

// generate runs the arrival loop: wait one inter-arrival gap, draw a
// skewed key, route to its shard, admit or drop.
func (op *OpenPending) generate(p *cluster.Process) {
	s, cfg := op.s, op.cfg
	op.t0 = p.Now()
	horizon := op.t0 + cfg.Window
	proc := cfg.arrivals(s)
	keys := NewZipfKeys(s.Eng.DeriveRand("loadgen-keys"), cfg.ZipfS, cfg.ZipfV, cfg.Keyspace)
	clients := s.Eng.DeriveRand("loadgen-clients")

	for {
		gap := proc.Next()
		if p.Now()+gap >= horizon {
			break
		}
		p.Wait(gap)
		key := keys.Next()
		st := &op.shards[s.PartitionOf(cfg.File, key)]
		st.stats.Arrivals++
		op.res.Arrivals++
		op.ld.OnArrival()
		depth := st.q.Len()
		op.res.Depth.Record(sim.Time(depth))
		if depth > st.stats.MaxDepth {
			st.stats.MaxDepth = depth
		}
		if cfg.MaxQueue > 0 && depth >= cfg.MaxQueue {
			st.stats.Drops++
			op.res.Drops++
			op.ld.OnDrop()
			continue
		}
		a := op.newArrival()
		a.at, a.client, a.key = p.Now(), uint64(clients.Intn(cfg.VirtualClients)), key
		st.q.Send(p.Sim(), a)
	}
	if horizon > p.Now() {
		p.Wait(horizon - p.Now())
	}
	// Window over: release the workers. Sentinels are FIFO-ordered
	// behind every admitted arrival, so the backlog fully drains.
	for i := range op.shards {
		for w := 0; w < cfg.WorkersPerShard; w++ {
			op.shards[i].q.Send(p.Sim(), (*arrival)(nil))
		}
	}
}

// worker drains one shard's admission queue until the end-of-window
// sentinel arrives.
func (op *OpenPending) worker(p *cluster.Process, shard, slot int) {
	s, cfg := op.s, op.cfg
	st := &op.shards[shard]
	se := s.NewSession(p)
	rng := s.Eng.DeriveRand(fmt.Sprintf("loadgen-worker-%d-%d", shard, slot))
	body := make([]byte, cfg.ValueBytes)
	staged := make([]uint64, 0, cfg.OpsPerTxn)
	for {
		a, _ := st.q.Recv(p.Sim()).(*arrival)
		if a == nil {
			return
		}
		op.ld.OnStart(p.Now() - a.at)
		op.runTxn(p, se, st, shard, a, rng, body, staged[:0])
		op.putArrival(a)
	}
}

// runTxn executes one arrival's transaction and files its outcome into
// exactly one of the commit/abort/error buckets, globally and on its
// shard.
//
//simlint:hotpath
func (op *OpenPending) runTxn(p *cluster.Process, se *ods.Session, st *openShard,
	shard int, a *arrival, rng *rand.Rand, body []byte, staged []uint64) {
	cfg, res := op.cfg, &op.res
	nShards := uint64(len(op.shards))
	res.Txns++
	st.stats.Txns++
	res.QueueWait.Record(p.Now() - a.at)
	txn, err := se.Begin()
	if err != nil {
		res.Errors++
		st.stats.Errors++
		return
	}
	dispatched := p.Now()
	// The cross-shard draw happens only when the knob is set, so a
	// CrossShardPct of zero consumes no randomness and the schedule is
	// byte-identical to a run without the knob.
	cross := false
	if cfg.CrossShardPct > 0 && nShards > 1 {
		cross = rng.Float64()*100 < cfg.CrossShardPct
	}
	se.SetTwoPhase(cross)
	failed := false
	for i := 0; i < cfg.OpsPerTxn; i++ {
		if len(st.written) > 0 && rng.Float64() < cfg.ReadFraction {
			key := st.written[rng.Intn(len(st.written))]
			rstart := p.Now()
			if _, err := se.ReadBrowse(cfg.File, key); err != nil {
				res.ReadErrors++
			} else {
				res.Reads++
				res.ReadLatency.Record(p.Now() - rstart)
			}
			continue
		}
		// Synthesize an insert key unique to this shard that PartitionOf
		// routes back to it: stride by the shard count. A cross-shard
		// transaction instead rotates its inserts round-robin over every
		// shard, drawing keys from this home shard's private block of the
		// cross sequence space so no two homes ever collide.
		var key uint64
		if target := (shard + len(staged)) % len(op.shards); cross && target != shard {
			key = (openCrossBase*(uint64(shard)+1)+st.crossSeq)*nShards + uint64(target)
			st.crossSeq++
		} else {
			key = st.nextSeq*nShards + uint64(shard)
			st.nextSeq++
		}
		if err := txn.InsertAsync(cfg.File, key, body); err != nil {
			failed = true
			break
		}
		staged = append(staged, key)
	}
	if failed {
		txn.Abort()
		res.Aborts++
		st.stats.Aborts++
		return
	}
	if err := txn.Commit(); err != nil {
		res.Aborts++
		st.stats.Aborts++
		return
	}
	// Only now do the inserted keys join the shard's read working set —
	// a key staged by an aborted transaction must never be browsed —
	// and only home-shard keys: the working set stays shard-local.
	if !cross {
		st.written = append(st.written, staged...)
	} else {
		res.CrossCommits++
		for _, k := range staged {
			if k%nShards == uint64(shard) {
				st.written = append(st.written, k)
			}
		}
	}
	res.Commits++
	st.stats.Commits++
	res.Inserts += int64(len(staged))
	sj := p.Now() - a.at
	res.Sojourn.Record(sj)
	st.stats.Sojourn.Record(sj)
	res.Service.Record(p.Now() - dispatched)
}

// Collect assembles the result after the engine has been drained.
func (op *OpenPending) Collect() OpenResult {
	res := op.res
	for _, t := range op.doneAt {
		if t-op.t0 > res.Elapsed {
			res.Elapsed = t - op.t0
		}
	}
	for i := range op.shards {
		res.Shards[i] = op.shards[i].stats
	}
	res.Events = op.s.EventsExecuted()
	return res
}

// RunOpen drives an open-loop run against an idle store to completion
// and returns aggregated results. Deterministic for a given store seed
// and config; partitioned stores drain under the safe-window scheduler
// (single-threaded — pass a worker count to ods.Store.Run directly for
// an intra-run parallel drain, the result is byte-identical).
func RunOpen(s *ods.Store, cfg OpenConfig) OpenResult {
	pend := StartOpen(s, cfg)
	s.Run(1)
	return pend.Collect()
}
