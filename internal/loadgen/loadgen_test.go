package loadgen

import (
	"testing"

	"persistmem/internal/faultinject"
	"persistmem/internal/ods"
	"persistmem/internal/sim"
)

func smallStore(d ods.Durability, seed int64) *ods.Store {
	opts := ods.DefaultOptions()
	opts.Seed = seed
	opts.Durability = d
	opts.Files = []ods.FileSpec{{Name: "A", Partitions: 2}, {Name: "B", Partitions: 2}}
	opts.DataVolumes = 4
	opts.PMRegionBytes = 8 << 20
	return ods.Build(opts)
}

// checkTaxonomy asserts the documented identity: every transaction
// attempt lands in exactly one bucket.
func checkTaxonomy(t *testing.T, r Result) {
	t.Helper()
	if r.Txns != r.Commits+r.Aborts+r.Errors {
		t.Errorf("Txns %d != Commits %d + Aborts %d + Errors %d", r.Txns, r.Commits, r.Aborts, r.Errors)
	}
}

func TestRunProducesWork(t *testing.T) {
	s := smallStore(ods.PMDurability, 1)
	cfg := DefaultConfig()
	cfg.Duration = 500 * sim.Millisecond
	r := Run(s, cfg)
	if r.Commits == 0 || r.Inserts == 0 {
		t.Fatalf("no work done: %+v", r)
	}
	if r.Errors != 0 || r.Aborts != 0 {
		t.Errorf("faultless run had %d errors, %d aborts", r.Errors, r.Aborts)
	}
	checkTaxonomy(t, r)
	if r.CommitLatency.Count() != r.Commits {
		t.Errorf("latency samples %d != commits %d", r.CommitLatency.Count(), r.Commits)
	}
	if r.TxnPerSec() <= 0 {
		t.Error("zero throughput")
	}
	s.Eng.Shutdown()
}

// TestElapsedIsWindowOnPreWarmedEngine pins the Elapsed bugfix: the
// measurement window is relative to each client's start, not the
// absolute virtual clock, so running after the engine has already
// advanced must not inflate Elapsed (and so deflate TxnPerSec).
func TestElapsedIsWindowOnPreWarmedEngine(t *testing.T) {
	run := func(warm sim.Time) Result {
		s := smallStore(ods.PMDurability, 21)
		if warm > 0 {
			s.Eng.RunUntil(warm)
		}
		cfg := DefaultConfig()
		cfg.Duration = 500 * sim.Millisecond
		r := Run(s, cfg)
		s.Eng.Shutdown()
		return r
	}
	cold, warmed := run(0), run(2*sim.Second)
	if warmed.Elapsed >= 2*sim.Second {
		t.Errorf("Elapsed %v contains the 2s warmup — absolute end time leaked into the window", warmed.Elapsed)
	}
	// Same store seed, same config: the warmed window must match the
	// cold one closely, not differ by the warmup offset.
	if warmed.Elapsed < cold.Elapsed/2 || warmed.Elapsed > cold.Elapsed*2 {
		t.Errorf("warmed Elapsed %v far from cold Elapsed %v", warmed.Elapsed, cold.Elapsed)
	}
	if cold.TxnPerSec() <= 0 || warmed.TxnPerSec() < cold.TxnPerSec()/2 {
		t.Errorf("warmed throughput %.1f/s collapsed vs cold %.1f/s", warmed.TxnPerSec(), cold.TxnPerSec())
	}
}

// TestAbortedKeysNeverBrowsed pins the working-set bugfix: a mid-run
// fault makes some commits fail, and the keys those transactions staged
// must never enter the read working set — zero read errors even at a
// high read fraction.
func TestAbortedKeysNeverBrowsed(t *testing.T) {
	s := smallStore(ods.DiskDurability, 23)
	// Kill the primary of one DP2 partition mid-run: transactions that
	// touch it during the takeover window fail their commits.
	plan := faultinject.Plan{
		{Kind: faultinject.ProcessKill, Service: "$DP-A-0", When: faultinject.Trigger{At: 100 * sim.Millisecond}},
	}
	inj := faultinject.Arm(s, plan)
	cfg := DefaultConfig()
	cfg.Duration = sim.Second
	cfg.ReadFraction = 0.5
	r := Run(s, cfg)
	if len(inj.Firings()) != 1 {
		t.Fatalf("fault did not fire: %v", inj.Firings())
	}
	if r.Aborts == 0 {
		t.Fatal("no aborts despite a DP2 primary kill mid-run")
	}
	if r.ReadErrors != 0 {
		t.Errorf("%d read errors — keys from failed transactions leaked into the working set", r.ReadErrors)
	}
	if r.Reads == 0 {
		t.Error("no reads at 50% read fraction")
	}
	checkTaxonomy(t, r)
	s.Eng.Shutdown()
}

func TestReadMixProducesReads(t *testing.T) {
	s := smallStore(ods.PMDurability, 1)
	cfg := DefaultConfig()
	cfg.Duration = 500 * sim.Millisecond
	cfg.ReadFraction = 0.5
	r := Run(s, cfg)
	if r.Reads == 0 {
		t.Error("no reads at 50% read fraction")
	}
	if r.ReadLatency.Count() != r.Reads {
		t.Errorf("read samples %d != reads %d", r.ReadLatency.Count(), r.Reads)
	}
	// Browse reads are fast (no durability on the path).
	if r.ReadLatency.Mean() > r.CommitLatency.Mean() {
		t.Errorf("read mean %v above commit mean %v", r.ReadLatency.Mean(), r.CommitLatency.Mean())
	}
	s.Eng.Shutdown()
}

func TestDiskSlowerThanPM(t *testing.T) {
	run := func(d ods.Durability) Result {
		s := smallStore(d, 1)
		cfg := DefaultConfig()
		cfg.Clients = 1
		cfg.Duration = 500 * sim.Millisecond
		cfg.ReadFraction = 0
		r := Run(s, cfg)
		s.Eng.Shutdown()
		return r
	}
	disk := run(ods.DiskDurability)
	pm := run(ods.PMDurability)
	if pm.TxnPerSec() <= disk.TxnPerSec() {
		t.Errorf("PM throughput (%.1f/s) not above disk (%.1f/s)", pm.TxnPerSec(), disk.TxnPerSec())
	}
}

func TestDeterministic(t *testing.T) {
	run := func() Result {
		s := smallStore(ods.PMDurability, 9)
		cfg := DefaultConfig()
		cfg.Duration = 300 * sim.Millisecond
		r := Run(s, cfg)
		s.Eng.Shutdown()
		return r
	}
	a, b := run(), run()
	if a.Txns != b.Txns || a.Commits != b.Commits || a.Inserts != b.Inserts || a.Reads != b.Reads {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
	checkTaxonomy(t, a)
	if a.CommitLatency.Mean() != b.CommitLatency.Mean() {
		t.Errorf("latency differs: %v vs %v", a.CommitLatency.Mean(), b.CommitLatency.Mean())
	}
}

func TestStringRendering(t *testing.T) {
	s := smallStore(ods.PMDurability, 1)
	cfg := DefaultConfig()
	cfg.Duration = 200 * sim.Millisecond
	r := Run(s, cfg)
	out := r.String()
	if len(out) == 0 || r.Txns == 0 {
		t.Errorf("String() = %q", out)
	}
	s.Eng.Shutdown()
}
