package loadgen

import (
	"testing"

	"persistmem/internal/ods"
	"persistmem/internal/sim"
)

func smallStore(d ods.Durability, seed int64) *ods.Store {
	opts := ods.DefaultOptions()
	opts.Seed = seed
	opts.Durability = d
	opts.Files = []ods.FileSpec{{Name: "A", Partitions: 2}, {Name: "B", Partitions: 2}}
	opts.DataVolumes = 4
	opts.PMRegionBytes = 8 << 20
	return ods.Build(opts)
}

func TestRunProducesWork(t *testing.T) {
	s := smallStore(ods.PMDurability, 1)
	cfg := DefaultConfig()
	cfg.Duration = 500 * sim.Millisecond
	r := Run(s, cfg)
	if r.Txns == 0 || r.Inserts == 0 {
		t.Fatalf("no work done: %+v", r)
	}
	if r.Errors != 0 {
		t.Errorf("errors: %d", r.Errors)
	}
	if r.CommitLatency.Count() != r.Txns {
		t.Errorf("latency samples %d != txns %d", r.CommitLatency.Count(), r.Txns)
	}
	if r.TxnPerSec() <= 0 {
		t.Error("zero throughput")
	}
	s.Eng.Shutdown()
}

func TestReadMixProducesReads(t *testing.T) {
	s := smallStore(ods.PMDurability, 1)
	cfg := DefaultConfig()
	cfg.Duration = 500 * sim.Millisecond
	cfg.ReadFraction = 0.5
	r := Run(s, cfg)
	if r.Reads == 0 {
		t.Error("no reads at 50% read fraction")
	}
	if r.ReadLatency.Count() != r.Reads {
		t.Errorf("read samples %d != reads %d", r.ReadLatency.Count(), r.Reads)
	}
	// Browse reads are fast (no durability on the path).
	if r.ReadLatency.Mean() > r.CommitLatency.Mean() {
		t.Errorf("read mean %v above commit mean %v", r.ReadLatency.Mean(), r.CommitLatency.Mean())
	}
	s.Eng.Shutdown()
}

func TestDiskSlowerThanPM(t *testing.T) {
	run := func(d ods.Durability) Result {
		s := smallStore(d, 1)
		cfg := DefaultConfig()
		cfg.Clients = 1
		cfg.Duration = 500 * sim.Millisecond
		cfg.ReadFraction = 0
		r := Run(s, cfg)
		s.Eng.Shutdown()
		return r
	}
	disk := run(ods.DiskDurability)
	pm := run(ods.PMDurability)
	if pm.TxnPerSec() <= disk.TxnPerSec() {
		t.Errorf("PM throughput (%.1f/s) not above disk (%.1f/s)", pm.TxnPerSec(), disk.TxnPerSec())
	}
}

func TestDeterministic(t *testing.T) {
	run := func() Result {
		s := smallStore(ods.PMDurability, 9)
		cfg := DefaultConfig()
		cfg.Duration = 300 * sim.Millisecond
		r := Run(s, cfg)
		s.Eng.Shutdown()
		return r
	}
	a, b := run(), run()
	if a.Txns != b.Txns || a.Inserts != b.Inserts || a.Reads != b.Reads {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
	if a.CommitLatency.Mean() != b.CommitLatency.Mean() {
		t.Errorf("latency differs: %v vs %v", a.CommitLatency.Mean(), b.CommitLatency.Mean())
	}
}

func TestStringRendering(t *testing.T) {
	s := smallStore(ods.PMDurability, 1)
	cfg := DefaultConfig()
	cfg.Duration = 200 * sim.Millisecond
	r := Run(s, cfg)
	out := r.String()
	if len(out) == 0 || r.Txns == 0 {
		t.Errorf("String() = %q", out)
	}
	s.Eng.Shutdown()
}
