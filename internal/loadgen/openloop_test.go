package loadgen

import (
	"testing"

	"persistmem/internal/metrics"
	"persistmem/internal/ods"
	"persistmem/internal/sim"
)

// shardedStore builds a store with one file split over nShards DP2
// partitions.
func shardedStore(d ods.Durability, seed int64, nShards int) *ods.Store {
	opts := ods.DefaultOptions()
	opts.Seed = seed
	opts.Durability = d
	opts.Files = []ods.FileSpec{{Name: "TRADES", Partitions: nShards}}
	opts.DataVolumes = 4
	opts.PMRegionBytes = 8 << 20
	return ods.Build(opts)
}

// checkIdentities asserts the documented counter taxonomy, globally and
// per shard, and that the shard ledgers sum to the global ones.
func checkIdentities(t *testing.T, r *OpenResult) {
	t.Helper()
	if r.Arrivals != r.Txns+r.Drops {
		t.Errorf("Arrivals %d != Txns %d + Drops %d", r.Arrivals, r.Txns, r.Drops)
	}
	if r.Txns != r.Commits+r.Aborts+r.Errors {
		t.Errorf("Txns %d != Commits %d + Aborts %d + Errors %d", r.Txns, r.Commits, r.Aborts, r.Errors)
	}
	var sum ShardStats
	for _, sh := range r.Shards {
		if sh.Txns != sh.Commits+sh.Aborts+sh.Errors {
			t.Errorf("shard %d: Txns %d != Commits %d + Aborts %d + Errors %d",
				sh.Shard, sh.Txns, sh.Commits, sh.Aborts, sh.Errors)
		}
		if sh.Arrivals != sh.Txns+sh.Drops {
			t.Errorf("shard %d: Arrivals %d != Txns %d + Drops %d", sh.Shard, sh.Arrivals, sh.Txns, sh.Drops)
		}
		sum.Arrivals += sh.Arrivals
		sum.Drops += sh.Drops
		sum.Txns += sh.Txns
		sum.Commits += sh.Commits
	}
	if sum.Arrivals != r.Arrivals || sum.Drops != r.Drops || sum.Txns != r.Txns || sum.Commits != r.Commits {
		t.Errorf("shard sums %+v do not match global (%d arrivals, %d drops, %d txns, %d commits)",
			sum, r.Arrivals, r.Drops, r.Txns, r.Commits)
	}
}

func TestOpenLoopProducesWork(t *testing.T) {
	s := shardedStore(ods.PMDurability, 1, 4)
	cfg := DefaultOpenConfig()
	cfg.Rate = 500
	cfg.Window = sim.Second
	r := RunOpen(s, cfg)
	if r.Commits == 0 || r.Inserts == 0 {
		t.Fatalf("no work done:\n%s", r.String())
	}
	if r.Errors != 0 || r.Aborts != 0 {
		t.Errorf("faultless run had %d errors, %d aborts", r.Errors, r.Aborts)
	}
	if r.Reads == 0 {
		t.Error("no reads at the default 20% read fraction")
	}
	if r.ReadErrors != 0 {
		t.Errorf("%d read errors browsing committed keys", r.ReadErrors)
	}
	checkIdentities(t, &r)
	if len(r.Shards) != 4 {
		t.Fatalf("got %d shard ledgers, want 4", len(r.Shards))
	}
	// Sojourn includes queue wait; it is sampled once per commit.
	if r.Sojourn.Count() != r.Commits {
		t.Errorf("sojourn samples %d != commits %d", r.Sojourn.Count(), r.Commits)
	}
	if r.QueueWait.Count() != r.Txns {
		t.Errorf("queue-wait samples %d != txns %d", r.QueueWait.Count(), r.Txns)
	}
	if len(r.String()) == 0 {
		t.Error("empty String()")
	}
	s.Eng.Shutdown()
}

// TestOpenLoopOfferedLoadTracksRate: the end-to-end measured offered
// load stays within sampling error of the configured λ (the tight 1%
// bound is pinned on the generator itself in arrival_test.go; a 2s
// window holds ~4000 arrivals, so 5% here is already ~3σ).
func TestOpenLoopOfferedLoadTracksRate(t *testing.T) {
	s := shardedStore(ods.PMDurability, 3, 4)
	cfg := DefaultOpenConfig()
	cfg.Rate = 2000
	cfg.Window = 2 * sim.Second
	r := RunOpen(s, cfg)
	if got := r.Offered(); got < cfg.Rate*0.95 || got > cfg.Rate*1.05 {
		t.Errorf("offered %.1f/s, want within 5%% of %.0f/s", got, cfg.Rate)
	}
	s.Eng.Shutdown()
}

func TestOpenLoopDeterministic(t *testing.T) {
	run := func() OpenResult {
		s := shardedStore(ods.PMDurability, 11, 4)
		cfg := DefaultOpenConfig()
		cfg.Rate = 800
		cfg.Window = 500 * sim.Millisecond
		r := RunOpen(s, cfg)
		s.Eng.Shutdown()
		return r
	}
	a, b := run(), run()
	if a.Arrivals != b.Arrivals || a.Commits != b.Commits || a.Elapsed != b.Elapsed ||
		a.Events != b.Events || a.Inserts != b.Inserts || a.Reads != b.Reads {
		t.Errorf("nondeterministic:\n%s\nvs\n%s", a.String(), b.String())
	}
	if a.Sojourn.Mean() != b.Sojourn.Mean() || a.Sojourn.Percentile(99) != b.Sojourn.Percentile(99) {
		t.Errorf("sojourn differs: %v vs %v", a.Sojourn.Mean(), b.Sojourn.Mean())
	}
	for i := range a.Shards {
		if a.Shards[i] != b.Shards[i] {
			t.Errorf("shard %d differs: %+v vs %+v", i, a.Shards[i], b.Shards[i])
		}
	}
}

// TestOpenLoopHotShard: Zipf skew routes low keys — and so low-numbered
// shards (PartitionOf is key % partitions, and key 0 is hottest) — far
// more arrivals than the rest.
func TestOpenLoopHotShard(t *testing.T) {
	s := shardedStore(ods.PMDurability, 5, 8)
	cfg := DefaultOpenConfig()
	cfg.Rate = 1000
	cfg.Window = sim.Second
	r := RunOpen(s, cfg)
	hot, cold := r.Shards[0].Arrivals, r.Shards[len(r.Shards)-1].Arrivals
	if hot < 3*cold {
		t.Errorf("shard 0 got %d arrivals vs shard %d's %d — skew not visible per shard",
			hot, len(r.Shards)-1, cold)
	}
	checkIdentities(t, &r)
	s.Eng.Shutdown()
}

// TestOpenLoopOverload drives far past the knee: offered load is
// decoupled from completions, the backlog drains after the window, and
// sojourn p99 (queueing included) dwarfs service p99.
func TestOpenLoopOverload(t *testing.T) {
	s := shardedStore(ods.PMDurability, 7, 4)
	cfg := DefaultOpenConfig()
	cfg.Rate = 6000 // ~3x the measured PM capacity of this store
	cfg.Window = sim.Second
	r := RunOpen(s, cfg)
	if r.Elapsed <= r.Window {
		t.Errorf("elapsed %v did not exceed window %v under 3x overload", r.Elapsed, r.Window)
	}
	if off, del := r.Offered(), r.Delivered(); del > off/2 {
		t.Errorf("delivered %.1f/s not clearly below offered %.1f/s", del, off)
	}
	if sp, svc := r.Sojourn.Percentile(99), r.Service.Percentile(99); sp < 10*svc {
		t.Errorf("sojourn p99 %v not far above service p99 %v — queueing invisible", sp, svc)
	}
	if r.Depth.Max() < 100 {
		t.Errorf("max observed queue depth %v too small for a 3x overload", r.Depth.Max())
	}
	checkIdentities(t, &r)
	s.Eng.Shutdown()
}

// TestOpenLoopMaxQueueDrops: a bounded admission queue sheds load and
// the drops land in the taxonomy without being executed.
func TestOpenLoopMaxQueueDrops(t *testing.T) {
	s := shardedStore(ods.PMDurability, 9, 4)
	cfg := DefaultOpenConfig()
	cfg.Rate = 6000
	cfg.Window = sim.Second
	cfg.MaxQueue = 32
	r := RunOpen(s, cfg)
	if r.Drops == 0 {
		t.Fatal("no drops with MaxQueue=32 under 3x overload")
	}
	if r.Depth.Max() > sim.Time(cfg.MaxQueue) {
		t.Errorf("observed depth %v above the %d bound", r.Depth.Max(), cfg.MaxQueue)
	}
	checkIdentities(t, &r)
	s.Eng.Shutdown()
}

// TestOpenLoopBursty: MMPP arrivals preserve the configured mean rate
// and still commit work.
func TestOpenLoopBursty(t *testing.T) {
	s := shardedStore(ods.PMDurability, 13, 4)
	cfg := DefaultOpenConfig()
	cfg.Rate = 1000
	cfg.Burst = true
	cfg.Window = 4 * sim.Second
	r := RunOpen(s, cfg)
	if r.Commits == 0 {
		t.Fatal("bursty run committed nothing")
	}
	// Mean preserved within burst-count sampling error (~20 on/off
	// cycles per second of window).
	if got := r.Offered(); got < cfg.Rate*0.80 || got > cfg.Rate*1.20 {
		t.Errorf("bursty offered %.1f/s, want near %.0f/s mean", got, cfg.Rate)
	}
	checkIdentities(t, &r)
	s.Eng.Shutdown()
}

// TestOpenLoopPreWarmedEngine: Elapsed and latencies are relative to
// the run's own start, so a harness started on an engine that has
// already advanced reports the same window arithmetic as a cold one.
func TestOpenLoopPreWarmedEngine(t *testing.T) {
	s := shardedStore(ods.PMDurability, 15, 4)
	s.Eng.RunUntil(3 * sim.Second) // warm: drain startup, advance the clock
	cfg := DefaultOpenConfig()
	cfg.Rate = 500
	cfg.Window = 500 * sim.Millisecond
	r := RunOpen(s, cfg)
	if r.Elapsed >= 3*sim.Second {
		t.Errorf("Elapsed %v contains the 3s warmup — absolute time leaked into the window", r.Elapsed)
	}
	if r.Elapsed < cfg.Window {
		t.Errorf("Elapsed %v below the %v arrival window", r.Elapsed, cfg.Window)
	}
	if got := r.Offered(); got < 400 || got > 600 {
		t.Errorf("offered %.1f/s on a warmed engine, want ~500/s", got)
	}
	checkIdentities(t, &r)
	s.Eng.Shutdown()
}

// TestOpenLoopLoadSpans: the metrics layer's load conservation law
// (arrivals == starts + drops + still-queued) holds after a drained
// run, and the counters mirror the harness's own ledger.
func TestOpenLoopLoadSpans(t *testing.T) {
	opts := ods.DefaultOptions()
	opts.Seed = 17
	opts.Durability = ods.PMDurability
	opts.Files = []ods.FileSpec{{Name: "TRADES", Partitions: 4}}
	opts.DataVolumes = 4
	opts.PMRegionBytes = 8 << 20
	opts.Metrics = metrics.NewRegistry()
	s := ods.Build(opts)

	cfg := DefaultOpenConfig()
	cfg.Rate = 4000
	cfg.Window = sim.Second
	cfg.MaxQueue = 64
	r := RunOpen(s, cfg)
	if errs := opts.Metrics.CheckConservation(); len(errs) != 0 {
		t.Errorf("conservation checks failed: %v", errs)
	}
	ld := opts.Metrics.Load
	if got := ld.Arrivals.Value(); got != r.Arrivals {
		t.Errorf("metrics arrivals %d != result arrivals %d", got, r.Arrivals)
	}
	if got := ld.Drops.Value(); got != r.Drops {
		t.Errorf("metrics drops %d != result drops %d", got, r.Drops)
	}
	if got := ld.Queued.Value(); got != 0 {
		t.Errorf("queued gauge %d after full drain, want 0", got)
	}
	if ld.Wait.Count() != r.Txns {
		t.Errorf("wait samples %d != executed txns %d", ld.Wait.Count(), r.Txns)
	}
	s.Eng.Shutdown()
}

// TestStartOpenUnknownFile: driving a file the store does not have is a
// programming error and must fail loudly.
func TestStartOpenUnknownFile(t *testing.T) {
	s := shardedStore(ods.PMDurability, 1, 2)
	defer s.Eng.Shutdown()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown file")
		}
	}()
	cfg := DefaultOpenConfig()
	cfg.File = "NOSUCH"
	StartOpen(s, cfg)
}
