// Package loadgen drives workloads against the online data store. It has
// two drivers:
//
//   - the closed-loop driver (this file): N concurrent sessions, each
//     issuing its next transaction when the previous one completes — the
//     tool for sizing a configuration under a self-limiting load;
//   - the open-loop saturation harness (openloop.go): a deterministic
//     arrival process, Zipf key skew over sharded partitions, and a
//     virtual-client pool whose offered load is decoupled from the
//     completion rate — the tool for finding the saturation knee.
package loadgen

import (
	"fmt"

	"persistmem/internal/cluster"
	"persistmem/internal/hist"
	"persistmem/internal/ods"
	"persistmem/internal/sim"
)

// Config shapes one closed-loop load run.
type Config struct {
	// Clients is the number of concurrent sessions (spread round-robin
	// over the CPUs).
	Clients int
	// Duration is the measurement window in virtual time.
	Duration sim.Time
	// OpsPerTxn is the number of data operations per transaction.
	OpsPerTxn int
	// ReadFraction in [0,1] is the probability an operation is a browse
	// read of a previously committed key rather than an insert.
	ReadFraction float64
	// ValueBytes sizes inserted values.
	ValueBytes int
}

// DefaultConfig returns a small insert-heavy mix.
func DefaultConfig() Config {
	return Config{
		Clients:      2,
		Duration:     2 * sim.Second,
		OpsPerTxn:    8,
		ReadFraction: 0.2,
		ValueBytes:   1024,
	}
}

// Result aggregates a closed-loop run.
//
// Counter taxonomy (disjoint by construction): every transaction
// attempt lands in exactly one of Commits, Aborts or Errors, so
//
//	Txns == Commits + Aborts + Errors
//
// Commits are transactions whose Commit returned nil. Aborts ended in a
// known not-committed outcome: an insert failure followed by a client
// abort, or a Commit that returned an error. Errors never became a
// transaction at all (Begin failed). Reads and ReadErrors count browse
// read operations — an op-level ledger, deliberately outside the
// txn-level identity.
type Result struct {
	// Elapsed is the measurement window: the longest span any client
	// spent from its own start to its last completion. It is a duration,
	// not an absolute virtual timestamp, so throughput is correct even
	// when the engine had advanced before the run began.
	Elapsed sim.Time

	Txns    int64
	Commits int64
	Aborts  int64
	Errors  int64

	Inserts    int64
	Reads      int64
	ReadErrors int64

	CommitLatency hist.H
	ReadLatency   hist.H
}

// TxnPerSec returns committed transactions per virtual second of the
// measurement window.
func (r Result) TxnPerSec() float64 {
	if r.Elapsed == 0 {
		return 0
	}
	return float64(r.Commits) / r.Elapsed.Seconds()
}

// String renders the run summary.
func (r Result) String() string {
	return fmt.Sprintf(
		"elapsed %v: %d txns = %d commits (%.1f/s) + %d aborts + %d errors; %d inserts, %d reads (%d read errors)\n  commit: %s\n  read:   %s",
		r.Elapsed, r.Txns, r.Commits, r.TxnPerSec(), r.Aborts, r.Errors,
		r.Inserts, r.Reads, r.ReadErrors,
		r.CommitLatency.Summary(), r.ReadLatency.Summary())
}

// Run drives the closed-loop workload against an idle store and returns
// aggregated results. Deterministic for a given store seed and config.
// The store's engine need not be fresh: the measurement window is
// relative to each client's start, so a pre-warmed engine reports the
// same throughput as a cold one.
func Run(s *ods.Store, cfg Config) Result {
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.OpsPerTxn <= 0 {
		cfg.OpsPerTxn = 1
	}
	files := make([]string, len(s.Opts.Files))
	for i, f := range s.Opts.Files {
		files[i] = f.Name
	}

	results := make([]Result, cfg.Clients)
	for c := 0; c < cfg.Clients; c++ {
		c := c
		cpu := c % s.Opts.CPUs
		rng := s.Eng.DeriveRand(fmt.Sprintf("loadgen-%d", c))
		s.Cl.CPU(cpu).Spawn(fmt.Sprintf("load%d", c), func(p *cluster.Process) {
			res := &results[c]
			se := s.NewSession(p)
			start := p.Now()
			deadline := start + cfg.Duration
			nextKey := uint64(c)<<40 | 1
			var written []uint64
			staged := make([]uint64, 0, cfg.OpsPerTxn)
			body := make([]byte, cfg.ValueBytes)
			for p.Now() < deadline {
				txnStart := p.Now()
				res.Txns++
				txn, err := se.Begin()
				if err != nil {
					res.Errors++
					p.Wait(10 * sim.Millisecond)
					continue
				}
				failed := false
				staged = staged[:0]
				for i := 0; i < cfg.OpsPerTxn; i++ {
					if len(written) > 0 && rng.Float64() < cfg.ReadFraction {
						key := written[rng.Intn(len(written))]
						rstart := p.Now()
						if _, err := se.ReadBrowse(files[int(key)%len(files)], key); err != nil {
							res.ReadErrors++
						} else {
							res.Reads++
							res.ReadLatency.Record(p.Now() - rstart)
						}
						continue
					}
					file := files[int(nextKey)%len(files)]
					if err := txn.InsertAsync(file, nextKey, body); err != nil {
						failed = true
						break
					}
					staged = append(staged, nextKey)
					nextKey++
				}
				if failed {
					txn.Abort()
					res.Aborts++
					continue
				}
				if err := txn.Commit(); err != nil {
					res.Aborts++
					continue
				}
				// Keys join the read working set only once their
				// transaction committed: a key staged by an aborted
				// transaction must never be browsed.
				written = append(written, staged...)
				res.Inserts += int64(len(staged))
				res.Commits++
				res.CommitLatency.Record(p.Now() - txnStart)
			}
			res.Elapsed = p.Now() - start
		})
	}

	s.Eng.Run()

	var out Result
	for i := range results {
		r := &results[i]
		out.Txns += r.Txns
		out.Commits += r.Commits
		out.Aborts += r.Aborts
		out.Errors += r.Errors
		out.Inserts += r.Inserts
		out.Reads += r.Reads
		out.ReadErrors += r.ReadErrors
		out.CommitLatency.Merge(&r.CommitLatency)
		out.ReadLatency.Merge(&r.ReadLatency)
		if r.Elapsed > out.Elapsed {
			out.Elapsed = r.Elapsed
		}
	}
	return out
}
