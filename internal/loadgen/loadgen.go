// Package loadgen is a configurable workload driver for the online data
// store — the tool a downstream user reaches for to size a configuration:
// N concurrent clients, a read/insert mix, a value size, and a time
// window, producing throughput and latency histograms per operation type.
package loadgen

import (
	"fmt"

	"persistmem/internal/cluster"
	"persistmem/internal/hist"
	"persistmem/internal/ods"
	"persistmem/internal/sim"
)

// Config shapes one load run.
type Config struct {
	// Clients is the number of concurrent sessions (spread round-robin
	// over the CPUs).
	Clients int
	// Duration is the measurement window in virtual time.
	Duration sim.Time
	// OpsPerTxn is the number of data operations per transaction.
	OpsPerTxn int
	// ReadFraction in [0,1] is the probability an operation is a browse
	// read of a previously written key rather than an insert.
	ReadFraction float64
	// ValueBytes sizes inserted values.
	ValueBytes int
}

// DefaultConfig returns a small insert-heavy mix.
func DefaultConfig() Config {
	return Config{
		Clients:      2,
		Duration:     2 * sim.Second,
		OpsPerTxn:    8,
		ReadFraction: 0.2,
		ValueBytes:   1024,
	}
}

// Result aggregates a run.
type Result struct {
	Elapsed       sim.Time
	Txns          int64
	Inserts       int64
	Reads         int64
	Aborts        int64
	Errors        int64
	CommitLatency hist.H
	ReadLatency   hist.H
}

// TxnPerSec returns committed transactions per virtual second.
func (r Result) TxnPerSec() float64 {
	if r.Elapsed == 0 {
		return 0
	}
	return float64(r.Txns) / r.Elapsed.Seconds()
}

// String renders the run summary.
func (r Result) String() string {
	return fmt.Sprintf(
		"elapsed %v: %d txns (%.1f/s), %d inserts, %d reads, %d aborts, %d errors\n  commit: %s\n  read:   %s",
		r.Elapsed, r.Txns, r.TxnPerSec(), r.Inserts, r.Reads, r.Aborts, r.Errors,
		r.CommitLatency.Summary(), r.ReadLatency.Summary())
}

// Run drives the workload against an idle store and returns aggregated
// results. Deterministic for a given store seed and config.
func Run(s *ods.Store, cfg Config) Result {
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.OpsPerTxn <= 0 {
		cfg.OpsPerTxn = 1
	}
	files := make([]string, len(s.Opts.Files))
	for i, f := range s.Opts.Files {
		files[i] = f.Name
	}

	results := make([]Result, cfg.Clients)
	for c := 0; c < cfg.Clients; c++ {
		c := c
		cpu := c % s.Opts.CPUs
		rng := s.Eng.DeriveRand(fmt.Sprintf("loadgen-%d", c))
		s.Cl.CPU(cpu).Spawn(fmt.Sprintf("load%d", c), func(p *cluster.Process) {
			res := &results[c]
			se := s.NewSession(p)
			deadline := p.Now() + cfg.Duration
			nextKey := uint64(c)<<40 | 1
			var written []uint64
			body := make([]byte, cfg.ValueBytes)
			for p.Now() < deadline {
				start := p.Now()
				txn, err := se.Begin()
				if err != nil {
					res.Errors++
					p.Wait(10 * sim.Millisecond)
					continue
				}
				failed := false
				txnInserts := int64(0)
				for i := 0; i < cfg.OpsPerTxn; i++ {
					if len(written) > 0 && rng.Float64() < cfg.ReadFraction {
						key := written[rng.Intn(len(written))]
						rstart := p.Now()
						if _, err := se.ReadBrowse(files[int(key)%len(files)], key); err != nil {
							res.Errors++
						} else {
							res.Reads++
							res.ReadLatency.Record(p.Now() - rstart)
						}
						continue
					}
					file := files[int(nextKey)%len(files)]
					if err := txn.InsertAsync(file, nextKey, body); err != nil {
						res.Errors++
						failed = true
						break
					}
					written = append(written, nextKey)
					nextKey++
					txnInserts++
				}
				if failed {
					txn.Abort()
					res.Aborts++
					continue
				}
				if err := txn.Commit(); err != nil {
					res.Errors++
					res.Aborts++
					continue
				}
				res.Inserts += txnInserts
				res.Txns++
				res.CommitLatency.Record(p.Now() - start)
			}
			res.Elapsed = p.Now()
		})
	}

	s.Eng.Run()

	var out Result
	for i := range results {
		r := &results[i]
		out.Txns += r.Txns
		out.Inserts += r.Inserts
		out.Reads += r.Reads
		out.Aborts += r.Aborts
		out.Errors += r.Errors
		out.CommitLatency.Merge(&r.CommitLatency)
		out.ReadLatency.Merge(&r.ReadLatency)
		if r.Elapsed > out.Elapsed {
			out.Elapsed = r.Elapsed
		}
	}
	return out
}
