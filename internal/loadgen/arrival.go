// Arrival processes and key distributions for the open-loop harness.
//
// An open-loop generator decides *when* the next transaction arrives
// independently of when earlier transactions complete, which is what
// lets offered load exceed the store's capacity and expose the
// saturation knee. Every source of randomness is a *rand.Rand derived
// via Engine.DeriveRand, so arrival schedules are a pure function of
// the simulation seed.
package loadgen

import (
	"fmt"
	"math/rand"

	"persistmem/internal/sim"
)

// Arrivals is a deterministic arrival process. Next returns the gap in
// virtual time between the previous arrival and the next one.
type Arrivals interface {
	Next() sim.Time
}

// Poisson is a stationary Poisson arrival process: independent
// exponentially distributed inter-arrival gaps with mean 1/rate.
type Poisson struct {
	rng     *rand.Rand
	meanGap float64 // mean inter-arrival gap in virtual nanoseconds
}

// NewPoisson returns a Poisson process offering rate arrivals per
// virtual second. rng must come from Engine.DeriveRand.
func NewPoisson(rng *rand.Rand, rate float64) *Poisson {
	if rate <= 0 {
		panic(fmt.Sprintf("loadgen: Poisson rate %v must be positive", rate))
	}
	return &Poisson{rng: rng, meanGap: float64(sim.Second) / rate}
}

// Next draws the next inter-arrival gap.
//
//simlint:hotpath
func (p *Poisson) Next() sim.Time {
	return sim.Time(p.rng.ExpFloat64() * p.meanGap)
}

// MMPP is a two-state Markov-modulated Poisson process — the standard
// on/off bursty-traffic model. The process alternates between an "on"
// state offering onRate and an "off" state offering offRate (possibly
// zero: silence between bursts); sojourn times in each state are
// exponential with the configured means.
type MMPP struct {
	rng              *rand.Rand
	onGap, offGap    float64 // mean inter-arrival gap per state (ns); <= 0 means silent
	onMean, offMean  float64 // mean state sojourn (ns)
	on               bool
	left             float64 // time remaining in the current state (ns)
}

// NewMMPP returns an on/off modulated Poisson process. onRate must be
// positive; offRate may be zero (fully silent gaps). The process starts
// in the on state with a freshly drawn sojourn.
func NewMMPP(rng *rand.Rand, onRate, offRate float64, onMean, offMean sim.Time) *MMPP {
	if onRate <= 0 {
		panic(fmt.Sprintf("loadgen: MMPP on-rate %v must be positive", onRate))
	}
	if offRate < 0 {
		panic(fmt.Sprintf("loadgen: MMPP off-rate %v must be non-negative", offRate))
	}
	if onMean <= 0 || offMean <= 0 {
		panic("loadgen: MMPP sojourn means must be positive")
	}
	m := &MMPP{
		rng:     rng,
		onGap:   float64(sim.Second) / onRate,
		onMean:  float64(onMean),
		offMean: float64(offMean),
		on:      true,
	}
	if offRate > 0 {
		m.offGap = float64(sim.Second) / offRate
	}
	m.left = m.rng.ExpFloat64() * m.onMean
	return m
}

// MeanRate returns the process's long-run offered load in arrivals per
// virtual second (the duty-cycle-weighted average of the two states).
func (m *MMPP) MeanRate() float64 {
	onRate := float64(sim.Second) / m.onGap
	offRate := 0.0
	if m.offGap > 0 {
		offRate = float64(sim.Second) / m.offGap
	}
	return (onRate*m.onMean + offRate*m.offMean) / (m.onMean + m.offMean)
}

// Next draws the next inter-arrival gap, crossing state boundaries as
// needed (a gap can span several silent off periods).
//
//simlint:hotpath
func (m *MMPP) Next() sim.Time {
	var gap float64
	for {
		cur := m.offGap
		if m.on {
			cur = m.onGap
		}
		if cur > 0 {
			draw := m.rng.ExpFloat64() * cur
			if draw <= m.left {
				m.left -= draw
				return sim.Time(gap + draw)
			}
		}
		// No arrival before the state flips: consume the remaining
		// sojourn and redraw in the other state.
		gap += m.left
		m.on = !m.on
		mean := m.offMean
		if m.on {
			mean = m.onMean
		}
		m.left = m.rng.ExpFloat64() * mean
	}
}

// Keys draws skewed logical keys: a Zipf distribution over
// [0, keyspace), so key 0 is the hottest. Routed through
// ods.Store.PartitionOf, low keys concentrate load on low-numbered
// shards — the skew-induced hot-shard scenario.
type Keys struct {
	z *rand.Zipf
}

// NewZipfKeys returns a Zipf(s, v) sampler over [0, keyspace). s must
// be > 1 and v >= 1 (math/rand's parameterization: P(k) ∝ (v+k)^-s).
func NewZipfKeys(rng *rand.Rand, s, v float64, keyspace uint64) *Keys {
	if keyspace == 0 {
		panic("loadgen: zero keyspace")
	}
	z := rand.NewZipf(rng, s, v, keyspace-1)
	if z == nil {
		panic(fmt.Sprintf("loadgen: invalid Zipf parameters s=%v v=%v (need s>1, v>=1)", s, v))
	}
	return &Keys{z: z}
}

// Next draws the next logical key.
//
//simlint:hotpath
func (k *Keys) Next() uint64 { return k.z.Uint64() }
