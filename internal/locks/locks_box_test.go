package locks

import (
	"errors"
	"testing"

	"persistmem/internal/sim"
)

// The tests below pin the box lifecycle that boxcheck (simlint) verifies
// statically: wait-request and lock-state boxes return to their pools on
// every exit path and are reused — not reallocated — by later operations.

func TestWaitReqBoxRecycledAfterGrant(t *testing.T) {
	eng := sim.NewEngine(1)
	m := NewManager(eng, "dp0")
	eng.Spawn("holder", func(p *sim.Proc) {
		if err := m.Acquire(p, 7, 1, Exclusive, -1); err != nil {
			t.Errorf("holder: %v", err)
		}
		p.Wait(5 * sim.Millisecond)
		m.Release(7, 1)
	})
	eng.SpawnAt(sim.Millisecond, "waiter", func(p *sim.Proc) {
		if err := m.Acquire(p, 7, 2, Exclusive, -1); err != nil {
			t.Errorf("waiter: %v", err)
		}
		m.Release(7, 2)
	})
	eng.Run()
	if len(m.reqfree) != 1 {
		t.Fatalf("reqfree holds %d boxes after a granted wait, want 1", len(m.reqfree))
	}
	recycled := m.reqfree[0]

	// A second contended acquire must reuse the recycled box.
	eng.Spawn("holder2", func(p *sim.Proc) {
		if err := m.Acquire(p, 9, 3, Exclusive, -1); err != nil {
			t.Errorf("holder2: %v", err)
		}
		p.Wait(5 * sim.Millisecond)
		m.Release(9, 3)
	})
	var reused *waitReq
	eng.SpawnAt(eng.Now()+sim.Millisecond, "waiter2", func(p *sim.Proc) {
		// The request box is visible in the queue while this process is
		// parked; capture it from a sibling observer instead of racing.
		if err := m.Acquire(p, 9, 4, Exclusive, -1); err != nil {
			t.Errorf("waiter2: %v", err)
		}
		m.Release(9, 4)
	})
	eng.SpawnAt(eng.Now()+2*sim.Millisecond, "observer", func(p *sim.Proc) {
		if ls := m.locks[9]; ls != nil && len(ls.queue) == 1 {
			reused = ls.queue[0]
		}
	})
	eng.Run()
	if reused != recycled {
		t.Errorf("second wait did not reuse the recycled box: got %p, want %p", reused, recycled)
	}
	m.CheckInvariants()
	eng.Shutdown()
}

func TestWaitReqBoxRecycledOnTimeout(t *testing.T) {
	eng := sim.NewEngine(1)
	m := NewManager(eng, "dp0")
	eng.Spawn("holder", func(p *sim.Proc) {
		if err := m.Acquire(p, 7, 1, Exclusive, -1); err != nil {
			t.Errorf("holder: %v", err)
		}
		p.Wait(sim.Second) // outlive the waiter's timeout
		m.Release(7, 1)
	})
	eng.SpawnAt(sim.Millisecond, "waiter", func(p *sim.Proc) {
		err := m.Acquire(p, 7, 2, Exclusive, 10*sim.Millisecond)
		if !errors.Is(err, ErrLockTimeout) {
			t.Errorf("waiter: %v, want ErrLockTimeout", err)
		}
	})
	eng.Run()
	// The timed-out request was withdrawn from the queue, so its box is
	// safe to recycle (no grant can reference it).
	if len(m.reqfree) != 1 {
		t.Errorf("reqfree holds %d boxes after a timeout, want 1", len(m.reqfree))
	}
	if m.Timeouts != 1 {
		t.Errorf("Timeouts = %d, want 1", m.Timeouts)
	}
	m.CheckInvariants()
	eng.Shutdown()
}

func TestLockStateBoxRecycledAndReused(t *testing.T) {
	eng := sim.NewEngine(1)
	m := NewManager(eng, "dp0")
	eng.Spawn("a", func(p *sim.Proc) {
		if err := m.Acquire(p, 7, 1, Exclusive, -1); err != nil {
			t.Fatalf("acquire: %v", err)
		}
		m.Release(7, 1)
	})
	eng.Run()
	if len(m.lsfree) != 1 {
		t.Fatalf("lsfree holds %d boxes after full release, want 1", len(m.lsfree))
	}
	recycled := m.lsfree[0]
	eng.Spawn("b", func(p *sim.Proc) {
		if err := m.Acquire(p, 11, 2, Shared, -1); err != nil {
			t.Fatalf("acquire: %v", err)
		}
	})
	eng.Run()
	if got := m.locks[11]; got != recycled {
		t.Errorf("new key did not reuse the recycled lock-state box: got %p, want %p", got, recycled)
	}
	if len(m.lsfree) != 0 {
		t.Errorf("lsfree holds %d boxes while a key is live, want 0", len(m.lsfree))
	}
	m.CheckInvariants()
	eng.Shutdown()
}
