package locks

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"persistmem/internal/audit"
	"persistmem/internal/sim"
)

func TestSharedLocksCoexist(t *testing.T) {
	eng := sim.NewEngine(1)
	m := NewManager(eng, "dp0")
	eng.Spawn("a", func(p *sim.Proc) {
		if err := m.Acquire(p, 7, 1, Shared, -1); err != nil {
			t.Errorf("txn1: %v", err)
		}
	})
	eng.Spawn("b", func(p *sim.Proc) {
		if err := m.Acquire(p, 7, 2, Shared, -1); err != nil {
			t.Errorf("txn2: %v", err)
		}
	})
	eng.Run()
	if m.HolderCount(7) != 2 {
		t.Errorf("HolderCount = %d, want 2", m.HolderCount(7))
	}
	m.CheckInvariants()
}

func TestExclusiveBlocksAndFIFO(t *testing.T) {
	eng := sim.NewEngine(1)
	m := NewManager(eng, "dp0")
	var order []audit.TxnID
	use := func(txn audit.TxnID, start sim.Time) {
		eng.SpawnAt(start, fmt.Sprint("t", txn), func(p *sim.Proc) {
			if err := m.Acquire(p, 7, txn, Exclusive, -1); err != nil {
				t.Errorf("txn%d: %v", txn, err)
				return
			}
			order = append(order, txn)
			p.Wait(10 * sim.Millisecond)
			m.Release(7, txn)
		})
	}
	use(1, 0)
	use(2, sim.Millisecond)
	use(3, 2*sim.Millisecond)
	eng.Run()
	if fmt.Sprint(order) != "[1 2 3]" {
		t.Errorf("grant order = %v, want FIFO", order)
	}
	m.CheckInvariants()
	if m.LockedKeys() != 0 {
		t.Errorf("LockedKeys = %d after all released", m.LockedKeys())
	}
}

func TestSharedThenExclusiveWaits(t *testing.T) {
	eng := sim.NewEngine(1)
	m := NewManager(eng, "dp0")
	var writerAt sim.Time
	eng.Spawn("reader", func(p *sim.Proc) {
		m.Acquire(p, 7, 1, Shared, -1)
		p.Wait(50 * sim.Millisecond)
		m.Release(7, 1)
	})
	eng.SpawnAt(sim.Millisecond, "writer", func(p *sim.Proc) {
		if err := m.Acquire(p, 7, 2, Exclusive, -1); err != nil {
			t.Errorf("writer: %v", err)
			return
		}
		writerAt = p.Now()
		m.Release(7, 2)
	})
	eng.Run()
	if writerAt != 50*sim.Millisecond {
		t.Errorf("writer granted at %v, want 50ms (after reader released)", writerAt)
	}
}

func TestUpgradeSoleHolder(t *testing.T) {
	eng := sim.NewEngine(1)
	m := NewManager(eng, "dp0")
	eng.Spawn("t", func(p *sim.Proc) {
		m.Acquire(p, 7, 1, Shared, -1)
		if err := m.Acquire(p, 7, 1, Exclusive, -1); err != nil {
			t.Errorf("upgrade: %v", err)
		}
		if mode, _ := m.Holds(7, 1); mode != Exclusive {
			t.Errorf("mode after upgrade = %v", mode)
		}
	})
	eng.Run()
	m.CheckInvariants()
}

func TestUpgradeWaitsForOtherReaders(t *testing.T) {
	eng := sim.NewEngine(1)
	m := NewManager(eng, "dp0")
	var upgradedAt sim.Time
	eng.Spawn("other-reader", func(p *sim.Proc) {
		m.Acquire(p, 7, 2, Shared, -1)
		p.Wait(30 * sim.Millisecond)
		m.Release(7, 2)
	})
	eng.SpawnAt(sim.Millisecond, "upgrader", func(p *sim.Proc) {
		m.Acquire(p, 7, 1, Shared, -1)
		if err := m.Acquire(p, 7, 1, Exclusive, -1); err != nil {
			t.Errorf("upgrade: %v", err)
			return
		}
		upgradedAt = p.Now()
	})
	eng.Run()
	if upgradedAt != 30*sim.Millisecond {
		t.Errorf("upgraded at %v, want 30ms", upgradedAt)
	}
	m.CheckInvariants()
}

func TestReacquireIsNoop(t *testing.T) {
	eng := sim.NewEngine(1)
	m := NewManager(eng, "dp0")
	eng.Spawn("t", func(p *sim.Proc) {
		m.Acquire(p, 7, 1, Exclusive, -1)
		if err := m.Acquire(p, 7, 1, Exclusive, -1); err != nil {
			t.Errorf("reacquire X: %v", err)
		}
		if err := m.Acquire(p, 7, 1, Shared, -1); err != nil {
			t.Errorf("S under X: %v", err)
		}
	})
	eng.Run()
	if m.HolderCount(7) != 1 {
		t.Errorf("HolderCount = %d", m.HolderCount(7))
	}
}

func TestTimeoutResolvesDeadlock(t *testing.T) {
	// Classic AB-BA deadlock: both transactions time out or one proceeds
	// after the other's timeout.
	eng := sim.NewEngine(1)
	m := NewManager(eng, "dp0")
	var errs []error
	work := func(txn audit.TxnID, first, second uint64) {
		eng.Spawn(fmt.Sprint("t", txn), func(p *sim.Proc) {
			m.Acquire(p, first, txn, Exclusive, -1)
			p.Wait(sim.Millisecond)
			err := m.Acquire(p, second, txn, Exclusive, 100*sim.Millisecond)
			errs = append(errs, err)
			m.ReleaseAll(txn)
		})
	}
	work(1, 100, 200)
	work(2, 200, 100)
	eng.Run()
	timeouts := 0
	for _, err := range errs {
		if errors.Is(err, ErrLockTimeout) {
			timeouts++
		}
	}
	if timeouts == 0 {
		t.Error("deadlock did not resolve via timeout")
	}
	if m.Timeouts == 0 {
		t.Error("Timeouts stat not incremented")
	}
	m.CheckInvariants()
	if m.LockedKeys() != 0 {
		t.Errorf("locks leaked after deadlock resolution: %d", m.LockedKeys())
	}
}

func TestTimeoutDoesNotBlockQueueForever(t *testing.T) {
	// A timed-out waiter at the head of the queue must not wedge those
	// behind it.
	eng := sim.NewEngine(1)
	m := NewManager(eng, "dp0")
	var granted []audit.TxnID
	eng.Spawn("holder", func(p *sim.Proc) {
		m.Acquire(p, 7, 1, Exclusive, -1)
		p.Wait(200 * sim.Millisecond)
		m.Release(7, 1)
	})
	eng.SpawnAt(sim.Millisecond, "impatient", func(p *sim.Proc) {
		if err := m.Acquire(p, 7, 2, Exclusive, 20*sim.Millisecond); err == nil {
			t.Error("impatient waiter should time out")
			m.Release(7, 2)
		}
	})
	eng.SpawnAt(2*sim.Millisecond, "patient", func(p *sim.Proc) {
		if err := m.Acquire(p, 7, 3, Exclusive, -1); err != nil {
			t.Errorf("patient: %v", err)
			return
		}
		granted = append(granted, 3)
		m.Release(7, 3)
	})
	eng.Run()
	if fmt.Sprint(granted) != "[3]" {
		t.Errorf("granted = %v, want [3]", granted)
	}
}

func TestReleaseAll(t *testing.T) {
	eng := sim.NewEngine(1)
	m := NewManager(eng, "dp0")
	eng.Spawn("t", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			m.Acquire(p, uint64(i), 1, Exclusive, -1)
		}
	})
	eng.Run()
	if m.LockedKeys() != 10 {
		t.Fatalf("LockedKeys = %d", m.LockedKeys())
	}
	m.ReleaseAll(1)
	if m.LockedKeys() != 0 {
		t.Errorf("LockedKeys = %d after ReleaseAll", m.LockedKeys())
	}
}

// Property: under random workloads of acquire/release with timeouts, the
// compatibility invariants always hold and no lock state leaks once all
// transactions release.
func TestLockInvariantProperty(t *testing.T) {
	type op struct {
		Txn  uint8
		Key  uint8
		Excl bool
	}
	prop := func(ops []op) bool {
		if len(ops) > 60 {
			ops = ops[:60]
		}
		eng := sim.NewEngine(7)
		m := NewManager(eng, "prop")
		violated := false
		for i, o := range ops {
			o := o
			txn := audit.TxnID(o.Txn%8 + 1)
			key := uint64(o.Key % 4)
			eng.SpawnAt(sim.Time(i)*sim.Microsecond, fmt.Sprint("p", i), func(p *sim.Proc) {
				mode := Shared
				if o.Excl {
					mode = Exclusive
				}
				if err := m.Acquire(p, key, txn, mode, 5*sim.Millisecond); err == nil {
					func() {
						defer func() {
							if recover() != nil {
								violated = true
							}
						}()
						m.CheckInvariants()
					}()
					p.Wait(sim.Time(o.Key%3) * sim.Millisecond)
					m.Release(key, txn)
				}
			})
		}
		eng.Run()
		for txn := audit.TxnID(1); txn <= 8; txn++ {
			m.ReleaseAll(txn)
		}
		return !violated && m.LockedKeys() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
