// Package locks implements the concurrency-control substrate of §1.1: a
// lock manager granting shared and exclusive row locks to transactions,
// with FIFO queueing, shared-to-exclusive upgrade for sole holders, and
// timeout-based deadlock resolution. Each DP2 (disk process) owns one
// lock manager for the rows of its partitions, which is exactly the
// NonStop partitioning of lock authority.
package locks

import (
	"errors"
	"fmt"

	"persistmem/internal/audit"
	"persistmem/internal/metrics"
	"persistmem/internal/sim"
)

// Lock errors.
var (
	// ErrLockTimeout means the lock could not be granted within the
	// timeout — the system's deadlock resolution mechanism.
	ErrLockTimeout = errors.New("locks: lock wait timed out")
	// ErrNotHeld is returned by Downgrade when the transaction does not
	// hold the lock.
	ErrNotHeld = errors.New("locks: lock not held")
)

// Mode is a lock mode.
type Mode int

// Lock modes.
const (
	// Shared allows concurrent readers.
	Shared Mode = iota
	// Exclusive allows a single writer.
	Exclusive
)

// String names the mode.
func (m Mode) String() string {
	if m == Shared {
		return "S"
	}
	return "X"
}

// lockState tracks one lockable resource.
type lockState struct {
	holders map[audit.TxnID]Mode
	queue   []*waitReq //simlint:boxowner -- queued waiters own their request boxes
}

type waitReq struct {
	txn     audit.TxnID
	mode    Mode
	granted *sim.Signal
}

// Manager is a lock manager. It is used from simulation processes only.
// Keys are row numbers; each DP2 owns one manager, so the (manager, key)
// pair is globally unique.
type Manager struct {
	eng   *sim.Engine
	name  string
	locks map[uint64]*lockState //simlint:boxowner -- live lock table owns per-key state boxes

	// Free lists. Lock entries churn once per touched row per
	// transaction, so both the per-key state and queued wait requests are
	// recycled. Per-manager (never global): managers on different engines
	// run on different goroutines under the parallel harness.
	lsfree  []*lockState //simlint:box -- per-key lock-state pool
	reqfree []*waitReq   //simlint:box -- wait-queue entry pool
	relbuf  []uint64     // ReleaseAll scratch

	// Stats
	Grants, Waits, Timeouts int64

	// ms holds shared wait-queue instruments (nil when unmetered). All
	// managers in a store record into the same bundle, and the bundle
	// survives process-pair takeovers, so the queue conservation law
	// (enters == exits + timeouts + queued) holds store-wide even as
	// manager incarnations come and go.
	ms *metrics.LockSpans
}

// NewManager returns an empty lock manager.
func NewManager(eng *sim.Engine, name string) *Manager {
	return &Manager{eng: eng, name: name, locks: make(map[uint64]*lockState)}
}

// SetMetrics attaches wait-queue instruments (nil detaches).
func (m *Manager) SetMetrics(ms *metrics.LockSpans) { m.ms = ms }

//simlint:hotpath
func (m *Manager) newLockState() *lockState {
	if n := len(m.lsfree); n > 0 {
		ls := m.lsfree[n-1]
		m.lsfree = m.lsfree[:n-1]
		return ls
	}
	return &lockState{holders: make(map[audit.TxnID]Mode)}
}

// freeLockState recycles a lock entry. Only admit calls it, and only
// after verifying both the holder map and the queue are empty, so no
// live reference can observe the recycled state: any Acquire parked on
// this key still has its waitReq in the queue.
//
//simlint:hotpath
func (m *Manager) freeLockState(ls *lockState) {
	clear(ls.holders)
	ls.queue = ls.queue[:0]
	m.lsfree = append(m.lsfree, ls)
}

//simlint:hotpath
func (m *Manager) newWaitReq(txn audit.TxnID, mode Mode) *waitReq {
	if n := len(m.reqfree); n > 0 {
		req := m.reqfree[n-1]
		m.reqfree = m.reqfree[:n-1]
		req.txn, req.mode = txn, mode
		req.granted = m.eng.NewSignal()
		return req
	}
	return &waitReq{txn: txn, mode: mode, granted: m.eng.NewSignal()}
}

//simlint:hotpath
func (m *Manager) freeWaitReq(req *waitReq) {
	m.eng.FreeSignal(req.granted)
	req.granted = nil
	m.reqfree = append(m.reqfree, req)
}

// compatible reports whether a request by txn for mode can be granted
// given current holders.
func (ls *lockState) compatible(txn audit.TxnID, mode Mode) bool {
	//simlint:ordered -- pure scan; the boolean result is order-independent
	for holder, hmode := range ls.holders {
		if holder == txn {
			continue // self-held handled by caller
		}
		if mode == Exclusive || hmode == Exclusive {
			return false
		}
	}
	return true
}

// Acquire grants txn a lock on key in the given mode, blocking p in FIFO
// order behind incompatible requests, up to timeout (negative = forever).
// Re-acquiring a held lock is a no-op; holding Shared and requesting
// Exclusive upgrades when the transaction is the sole holder, and queues
// otherwise.
//
//simlint:hotpath
func (m *Manager) Acquire(p *sim.Proc, key uint64, txn audit.TxnID, mode Mode, timeout sim.Time) error {
	ls := m.locks[key]
	if ls == nil {
		ls = m.newLockState()
		m.locks[key] = ls
	}
	if held, ok := ls.holders[txn]; ok {
		if held == Exclusive || mode == Shared {
			return nil // already strong enough
		}
		// Upgrade path.
		if len(ls.holders) == 1 && ls.compatible(txn, Exclusive) {
			ls.holders[txn] = Exclusive
			m.Grants++
			return nil
		}
	} else if len(ls.queue) == 0 && ls.compatible(txn, mode) {
		ls.holders[txn] = mode
		m.Grants++
		return nil
	}

	// Queue and wait.
	m.Waits++
	m.ms.OnEnter()
	waitStart := m.eng.Now()
	req := m.newWaitReq(txn, mode)
	ls.queue = append(ls.queue, req)
	_, ok := req.granted.WaitTimeout(p, timeout)
	if !ok {
		// Timed out: withdraw the request and wake anyone it was blocking.
		// The request is still queued — admit removes a request from the
		// queue strictly before triggering it, and a triggered request
		// cannot reach this branch — so Trigger was never called and the
		// signal is safe to recycle.
		for i, r := range ls.queue {
			if r == req {
				ls.queue = append(ls.queue[:i], ls.queue[i+1:]...)
				m.freeWaitReq(req)
				break
			}
		}
		m.Timeouts++
		m.ms.OnTimeout()
		m.admit(key, ls)
		//simlint:allow hotalloc -- deadlock-timeout path, cold by construction
		return fmt.Errorf("%w: txn %d on %s/r%d", ErrLockTimeout, txn, m.name, key)
	}
	m.freeWaitReq(req)
	m.ms.OnGranted(m.eng.Now() - waitStart)
	return nil
}

// admit grants queued requests in FIFO order while they are compatible.
func (m *Manager) admit(key uint64, ls *lockState) {
	for len(ls.queue) > 0 {
		req := ls.queue[0]
		// An upgrade request is admissible when the requester is the sole
		// remaining holder.
		if held, ok := ls.holders[req.txn]; ok {
			if held == Exclusive || req.mode == Shared {
				ls.queue = ls.queue[1:]
				req.granted.Trigger(nil)
				continue
			}
			if len(ls.holders) == 1 {
				ls.holders[req.txn] = Exclusive
				ls.queue = ls.queue[1:]
				m.Grants++
				req.granted.Trigger(nil)
				continue
			}
			return
		}
		if !ls.compatible(req.txn, req.mode) {
			return
		}
		ls.holders[req.txn] = req.mode
		ls.queue = ls.queue[1:]
		m.Grants++
		req.granted.Trigger(nil)
	}
	if len(ls.holders) == 0 && len(ls.queue) == 0 {
		delete(m.locks, key)
		m.freeLockState(ls)
	}
}

// Release drops txn's lock on key.
//
//simlint:hotpath
func (m *Manager) Release(key uint64, txn audit.TxnID) {
	ls := m.locks[key]
	if ls == nil {
		return
	}
	delete(ls.holders, txn)
	m.admit(key, ls)
}

// ReleaseAll drops every lock held by txn — the commit/abort path. Keys
// are released in sorted order: each release may admit waiters (waking
// their processes), so the release sequence is schedule-visible and must
// not depend on map iteration order.
//
//simlint:hotpath
func (m *Manager) ReleaseAll(txn audit.TxnID) {
	// Collect first: admit may delete map entries. Insertion sort into a
	// reused scratch slice: transactions touch a handful of rows, and the
	// closure-free sort keeps the commit path allocation-free.
	keys := m.relbuf[:0]
	//simlint:ordered -- collected into a slice and sorted below
	for key, ls := range m.locks {
		if _, ok := ls.holders[txn]; ok {
			i := len(keys)
			keys = append(keys, key)
			for i > 0 && keys[i-1] > key {
				keys[i] = keys[i-1]
				i--
			}
			keys[i] = key
		}
	}
	m.relbuf = keys
	for _, key := range keys {
		m.Release(key, txn)
	}
}

// Holds reports the mode txn holds on key.
//
//simlint:hotpath
func (m *Manager) Holds(key uint64, txn audit.TxnID) (Mode, bool) {
	if ls := m.locks[key]; ls != nil {
		mode, ok := ls.holders[txn]
		return mode, ok
	}
	return 0, false
}

// HolderCount returns the number of transactions holding key.
//
//simlint:hotpath
func (m *Manager) HolderCount(key uint64) int {
	if ls := m.locks[key]; ls != nil {
		return len(ls.holders)
	}
	return 0
}

// QueueLen returns the number of waiters on key.
//
//simlint:hotpath
func (m *Manager) QueueLen(key uint64) int {
	if ls := m.locks[key]; ls != nil {
		return len(ls.queue)
	}
	return 0
}

// LockedKeys returns the number of distinct keys with lock state.
func (m *Manager) LockedKeys() int { return len(m.locks) }

// CheckInvariants panics if lock-compatibility invariants are violated:
// at most one Exclusive holder per key, and never Exclusive alongside
// other holders.
func (m *Manager) CheckInvariants() {
	//simlint:ordered -- per-key checks are independent; only panics escape
	for key, ls := range m.locks {
		excl := 0
		//simlint:ordered -- commutative count
		for _, mode := range ls.holders {
			if mode == Exclusive {
				excl++
			}
		}
		if excl > 1 {
			panic(fmt.Sprintf("locks: %d exclusive holders on r%d", excl, key))
		}
		if excl == 1 && len(ls.holders) > 1 {
			panic(fmt.Sprintf("locks: exclusive plus others on r%d", key))
		}
	}
}
