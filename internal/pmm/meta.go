// Package pmm implements the Persistent Memory Manager of §4.1: a process
// pair that owns a PM volume — a mirrored pair of NPMUs presented as one
// logical device — and manages its regions (the PM analog of files),
// metadata, and NIC address-translation programming.
//
// The PMM's metadata "must be kept consistent at all times in order to
// facilitate recovery should the system fail" (§4.1). It is stored in a
// reserved area at the front of both NPMUs using a two-slot alternating
// scheme: each update writes the next generation into the older slot, so
// a crash mid-write always leaves one intact, CRC-valid slot.
package pmm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
)

// Metadata geometry.
const (
	// MetaSlotBytes is the size of one metadata slot.
	MetaSlotBytes = 128 << 10
	// MetaBytes is the total reserved metadata area (two slots) at the
	// front of each device; region space starts after it.
	MetaBytes = 2 * MetaSlotBytes

	metaMagic = "PMVOLMET"
)

// Metadata decode errors.
var (
	// ErrNoMetadata means a slot holds no valid metadata (bad magic).
	ErrNoMetadata = errors.New("pmm: no metadata in slot")
	// ErrCorruptMetadata means a slot's CRC or structure check failed.
	ErrCorruptMetadata = errors.New("pmm: corrupt metadata")
)

// RegionMeta is the durable description of one region.
type RegionMeta struct {
	Name   string
	Owner  string
	Offset int64 // physical byte offset within each NPMU
	Size   int64
}

// VolumeState is the PMM's metadata: the region table plus a generation
// counter. It is both the durable on-device format's source and the
// checkpoint payload between the PMM primary and backup.
type VolumeState struct {
	Volume  string
	Gen     uint64
	Regions map[string]*RegionMeta

	// OpenBy maps region name to the set of CPU indexes holding it open.
	// Open handles are runtime state: they are checkpointed to the backup
	// (takeover keeps clients' handles valid) but not written to durable
	// media (after a power loss all clients are gone anyway).
	OpenBy map[string]map[int]bool
}

// NewVolumeState returns an empty state for the named volume.
func NewVolumeState(volume string) *VolumeState {
	return &VolumeState{
		Volume:  volume,
		Regions: make(map[string]*RegionMeta),
		OpenBy:  make(map[string]map[int]bool),
	}
}

// Clone deep-copies the state (checkpoints must not alias live maps).
func (s *VolumeState) Clone() *VolumeState {
	c := NewVolumeState(s.Volume)
	c.Gen = s.Gen
	//simlint:ordered -- map-to-map copy; insertion order is invisible
	for n, r := range s.Regions {
		cp := *r
		c.Regions[n] = &cp
	}
	//simlint:ordered -- map-to-map copy; insertion order is invisible
	for n, set := range s.OpenBy {
		cs := make(map[int]bool, len(set))
		//simlint:ordered -- map-to-map copy; insertion order is invisible
		for k, v := range set {
			cs[k] = v
		}
		c.OpenBy[n] = cs
	}
	return c
}

// sortedRegions returns regions ordered by offset (stable encode order and
// allocation scanning).
func (s *VolumeState) sortedRegions() []*RegionMeta {
	rs := make([]*RegionMeta, 0, len(s.Regions))
	//simlint:ordered -- collected into a slice and sorted by offset below
	for _, r := range s.Regions {
		rs = append(rs, r)
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].Offset < rs[j].Offset })
	return rs
}

// Allocate finds a free extent of the given size in a device of capacity
// total, honoring the reserved metadata area. It returns the chosen offset
// without mutating state.
func (s *VolumeState) Allocate(size, total int64) (int64, error) {
	if size <= 0 {
		return 0, fmt.Errorf("pmm: region size %d must be positive", size)
	}
	cursor := int64(MetaBytes)
	for _, r := range s.sortedRegions() {
		if r.Offset-cursor >= size {
			return cursor, nil
		}
		if end := r.Offset + r.Size; end > cursor {
			cursor = end
		}
	}
	if total-cursor >= size {
		return cursor, nil
	}
	return 0, fmt.Errorf("pmm: volume full: need %d bytes, largest tail gap %d", size, total-cursor)
}

// EncodeMeta serializes the durable portion of the state into one metadata
// slot image (magic, generation, CRC-protected region table).
func EncodeMeta(s *VolumeState) ([]byte, error) {
	payload := make([]byte, 0, 256)
	var scratch [8]byte

	putU32 := func(v uint32) {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		payload = append(payload, scratch[:4]...)
	}
	putU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:8], v)
		payload = append(payload, scratch[:8]...)
	}
	putStr := func(str string) {
		putU32(uint32(len(str)))
		payload = append(payload, str...)
	}

	putStr(s.Volume)
	rs := s.sortedRegions()
	putU32(uint32(len(rs)))
	for _, r := range rs {
		putStr(r.Name)
		putStr(r.Owner)
		putU64(uint64(r.Offset))
		putU64(uint64(r.Size))
	}

	header := make([]byte, 24)
	copy(header, metaMagic)
	binary.LittleEndian.PutUint64(header[8:], s.Gen)
	binary.LittleEndian.PutUint32(header[16:], uint32(len(payload)))
	// The CRC covers generation and length too: a torn write anywhere in
	// the slot must be detectable.
	crc := crc32.ChecksumIEEE(header[8:20])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	binary.LittleEndian.PutUint32(header[20:], crc)
	img := append(header, payload...)
	if len(img) > MetaSlotBytes {
		return nil, fmt.Errorf("pmm: metadata (%d bytes) exceeds slot size %d", len(img), MetaSlotBytes)
	}
	return img, nil
}

// DecodeMeta parses one slot image, returning the durable state and its
// generation.
func DecodeMeta(img []byte) (*VolumeState, error) {
	if len(img) < 24 || string(img[:8]) != metaMagic {
		return nil, ErrNoMetadata
	}
	gen := binary.LittleEndian.Uint64(img[8:])
	plen := binary.LittleEndian.Uint32(img[16:])
	crc := binary.LittleEndian.Uint32(img[20:])
	if int(plen) > len(img)-24 {
		return nil, fmt.Errorf("%w: payload length %d exceeds slot", ErrCorruptMetadata, plen)
	}
	payload := img[24 : 24+plen]
	want := crc32.ChecksumIEEE(img[8:20])
	want = crc32.Update(want, crc32.IEEETable, payload)
	if want != crc {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrCorruptMetadata)
	}

	pos := 0
	fail := func() (*VolumeState, error) {
		return nil, fmt.Errorf("%w: truncated payload", ErrCorruptMetadata)
	}
	getU32 := func() (uint32, bool) {
		if pos+4 > len(payload) {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(payload[pos:])
		pos += 4
		return v, true
	}
	getU64 := func() (uint64, bool) {
		if pos+8 > len(payload) {
			return 0, false
		}
		v := binary.LittleEndian.Uint64(payload[pos:])
		pos += 8
		return v, true
	}
	getStr := func() (string, bool) {
		n, ok := getU32()
		if !ok || pos+int(n) > len(payload) {
			return "", false
		}
		v := string(payload[pos : pos+int(n)])
		pos += int(n)
		return v, true
	}

	vol, ok := getStr()
	if !ok {
		return fail()
	}
	st := NewVolumeState(vol)
	st.Gen = gen
	count, ok := getU32()
	if !ok {
		return fail()
	}
	for i := uint32(0); i < count; i++ {
		name, ok1 := getStr()
		owner, ok2 := getStr()
		off, ok3 := getU64()
		size, ok4 := getU64()
		if !ok1 || !ok2 || !ok3 || !ok4 {
			return fail()
		}
		st.Regions[name] = &RegionMeta{
			Name: name, Owner: owner, Offset: int64(off), Size: int64(size),
		}
	}
	return st, nil
}

// slotOffset returns the device offset of metadata slot i (0 or 1).
func slotOffset(i uint64) int64 { return int64(i%2) * MetaSlotBytes }
