package pmm

import (
	"errors"
	"testing"

	"persistmem/internal/cluster"
	"persistmem/internal/npmu"
	"persistmem/internal/sim"
)

// TestManagerLifecycle drives the management protocol end to end against
// a mirrored volume: create, double-create, open, list, the busy-delete
// refusal, close, delete, and the accessors fault-injection code leans on.
func TestManagerLifecycle(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := cluster.DefaultConfig()
	cfg.CPUs = 3
	cl := cluster.New(eng, cfg)
	prim := npmu.New(cl, "npmu-a", 16<<20)
	mirr := npmu.New(cl, "npmu-b", 16<<20)
	m := Start(cl, "$PM0", 0, 1, prim, mirr)
	if m.Name() != "$PM0" || m.Pair() == nil {
		t.Fatalf("accessors: name=%q pair=%v", m.Name(), m.Pair())
	}
	if p, mr := m.Devices(); p != prim || mr != mirr {
		t.Fatal("Devices did not return the mirrored pair")
	}
	cl.CPU(2).Spawn("client", func(p *cluster.Process) {
		call := func(req interface{}) Resp {
			v, err := p.Call("$PM0", 128, req)
			if err != nil {
				t.Errorf("call %T: %v", req, err)
				return Resp{Err: err}
			}
			return v.(Resp)
		}
		r := call(CreateReq{Name: "log0", Size: 1 << 20, Owner: "test"})
		if r.Err != nil || r.Info.Size != 1<<20 || r.Info.Primary == r.Info.Mirror {
			t.Errorf("create: err=%v info=%+v", r.Err, r.Info)
		}
		if r = call(CreateReq{Name: "log0", Size: 1 << 20}); !errors.Is(r.Err, ErrExists) {
			t.Errorf("double create: %v, want ErrExists", r.Err)
		}
		if r = call(OpenReq{Name: "log0", ClientCPU: 2}); r.Err != nil || r.Info.Name != "log0" {
			t.Errorf("open: err=%v info=%+v", r.Err, r.Info)
		}
		if r = call(ListReq{}); r.Err != nil || len(r.Regions) != 1 {
			t.Errorf("list: err=%v regions=%d, want 1", r.Err, len(r.Regions))
		}
		if r = call(DeleteReq{Name: "log0"}); !errors.Is(r.Err, ErrBusy) {
			t.Errorf("delete while open: %v, want ErrBusy", r.Err)
		}
		if r = call(CloseReq{Name: "log0", ClientCPU: 2}); r.Err != nil {
			t.Errorf("close: %v", r.Err)
		}
		if r = call(DeleteReq{Name: "log0"}); r.Err != nil {
			t.Errorf("delete: %v", r.Err)
		}
		if r = call(OpenReq{Name: "log0", ClientCPU: 2}); !errors.Is(r.Err, ErrNotFound) {
			t.Errorf("open after delete: %v, want ErrNotFound", r.Err)
		}
	})
	eng.Run()
	if m.RequestsSeen == 0 {
		t.Error("manager served no requests")
	}
	m.Stop()
	eng.Run()
}
