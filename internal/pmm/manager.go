package pmm

import (
	"errors"
	"fmt"
	"sort"

	"persistmem/internal/cluster"
	"persistmem/internal/npmu"
	"persistmem/internal/servernet"
	"persistmem/internal/sim"
)

// Manager errors (returned to clients inside Resp.Err).
var (
	// ErrExists means a region with that name already exists.
	ErrExists = errors.New("pmm: region exists")
	// ErrNotFound means no region has that name.
	ErrNotFound = errors.New("pmm: region not found")
	// ErrBusy means the region is still open somewhere.
	ErrBusy = errors.New("pmm: region open")
	// ErrVolumeDown means neither NPMU of the volume accepted the
	// operation.
	ErrVolumeDown = errors.New("pmm: volume down")
)

// requestCost is the PMM's CPU time per management request.
const requestCost = 20 * sim.Microsecond

// Request/response protocol between clients and the PMM. Clients send one
// of the *Req types with Process.Call and receive a Resp.
type (
	// CreateReq creates a region.
	CreateReq struct {
		Name  string
		Size  int64
		Owner string
	}
	// OpenReq opens a region for RDMA access from ClientCPU.
	OpenReq struct {
		Name      string
		ClientCPU int
	}
	// CloseReq revokes ClientCPU's access to a region.
	CloseReq struct {
		Name      string
		ClientCPU int
	}
	// DeleteReq removes a region that is not open anywhere.
	DeleteReq struct{ Name string }
	// ListReq asks for the region table.
	ListReq struct{}
	// ResilverReq rebuilds the mirror: after an NPMU is replaced or
	// returns from a failure, the PMM copies every region's extent (and
	// rewrites the metadata) from the surviving device so the volume is
	// fully redundant again.
	ResilverReq struct{}
)

// ResilverResp reports the repair.
type ResilverResp struct {
	// BytesCopied is the amount moved from the survivor to the mirror.
	BytesCopied int64
	Err         error
}

// RegionInfo is what a client needs to access an open region directly:
// the network virtual address window and the device endpoints to address.
type RegionInfo struct {
	Name    string
	Base    uint32 // network virtual address of the region's first byte
	Size    int64
	Primary servernet.EndpointID
	Mirror  servernet.EndpointID
}

// Resp is the PMM's reply to any request.
type Resp struct {
	Info    RegionInfo   // for Create/Open
	Regions []RegionMeta // for List
	Err     error
}

// Manager runs the PMM process pair for one PM volume.
type Manager struct {
	cl       *cluster.Cluster
	name     string
	primDev  *npmu.Device
	mirrDev  *npmu.Device
	pair     *cluster.Pair
	formatOK bool

	// Stats
	MetaWrites   int64 // durable metadata slot writes (per device)
	Recoveries   int64 // cold starts that rebuilt state from device metadata
	Resilvers    int64 // completed mirror repairs
	RequestsSeen int64
}

// Start launches the PMM pair named name with its primary on CPU primCPU
// and backup on backCPU, controlling the mirrored NPMU pair (prim, mirr).
// Passing the same device twice runs an unmirrored volume (the mirroring
// ablation). The service is reachable under name via the cluster message
// system.
func Start(cl *cluster.Cluster, name string, primCPU, backCPU int, prim, mirr *npmu.Device) *Manager {
	if prim.Capacity() != mirr.Capacity() {
		panic("pmm: mirrored NPMUs must have equal capacity")
	}
	if prim.Capacity() <= MetaBytes {
		panic("pmm: NPMU too small for metadata area")
	}
	m := &Manager{cl: cl, name: name, primDev: prim, mirrDev: mirr}
	m.pair = cl.StartPair(name, primCPU, backCPU, m.serve)
	return m
}

// Name returns the volume/service name.
func (m *Manager) Name() string { return m.name }

// Pair returns the underlying process pair (for fault-injection tests).
func (m *Manager) Pair() *cluster.Pair { return m.pair }

// Devices returns the mirrored NPMU pair.
func (m *Manager) Devices() (primary, mirror *npmu.Device) { return m.primDev, m.mirrDev }

// Stop shuts the PMM down. Open regions keep working — clients access
// NPMUs directly and the device ATT is unaffected — but management
// operations become unavailable.
func (m *Manager) Stop() { m.pair.Stop() }

// devices returns the volume's distinct devices in a fixed order.
func (m *Manager) devices() []*npmu.Device {
	if m.primDev == m.mirrDev {
		return []*npmu.Device{m.primDev}
	}
	return []*npmu.Device{m.primDev, m.mirrDev}
}

// serve is the PMM service body, run by the pair's primary incarnation.
func (m *Manager) serve(ctx *cluster.PairCtx) {
	var st *VolumeState
	switch {
	case ctx.Restored != nil:
		st = ctx.Restored.(*VolumeState)
	default:
		st = m.recoverOrFormat(ctx)
	}

	// (Re)program this incarnation's management windows and any region
	// windows recorded as open. After a pure takeover the device ATT is
	// intact and reprogramming is an idempotent refresh; after a power
	// cycle it is what restores client access.
	m.programManagement(ctx)
	for _, name := range sortedOpen(st) {
		m.programRegion(ctx.Process, st, name)
	}

	for {
		ev := ctx.Recv()
		m.RequestsSeen++
		ctx.Compute(requestCost)
		switch req := ev.Payload.(type) {
		case CreateReq:
			ev.Reply(m.handleCreate(ctx, st, req))
		case OpenReq:
			ev.Reply(m.handleOpen(ctx, st, req))
		case CloseReq:
			ev.Reply(m.handleClose(ctx, st, req))
		case DeleteReq:
			ev.Reply(m.handleDelete(ctx, st, req))
		case ListReq:
			ev.Reply(Resp{Regions: m.snapshotRegions(st)})
		case ResilverReq:
			ev.Reply(m.handleResilver(ctx, st))
		default:
			ev.Reply(Resp{Err: fmt.Errorf("pmm: unknown request %T", req)})
		}
	}
}

func (m *Manager) snapshotRegions(st *VolumeState) []RegionMeta {
	var out []RegionMeta
	for _, r := range st.sortedRegions() {
		out = append(out, *r)
	}
	return out
}

func (m *Manager) info(r *RegionMeta) RegionInfo {
	return RegionInfo{
		Name:    r.Name,
		Base:    uint32(r.Offset),
		Size:    r.Size,
		Primary: m.primDev.EndpointID(),
		Mirror:  m.mirrDev.EndpointID(),
	}
}

func (m *Manager) handleCreate(ctx *cluster.PairCtx, st *VolumeState, req CreateReq) Resp {
	if _, dup := st.Regions[req.Name]; dup {
		return Resp{Err: fmt.Errorf("%w: %q", ErrExists, req.Name)}
	}
	off, err := st.Allocate(req.Size, m.primDev.Capacity())
	if err != nil {
		return Resp{Err: err}
	}
	r := &RegionMeta{Name: req.Name, Owner: req.Owner, Offset: off, Size: req.Size}
	st.Regions[req.Name] = r
	if err := m.persist(ctx, st); err != nil {
		delete(st.Regions, req.Name)
		return Resp{Err: err}
	}
	m.checkpoint(ctx, st)
	return Resp{Info: m.info(r)}
}

func (m *Manager) handleOpen(ctx *cluster.PairCtx, st *VolumeState, req OpenReq) Resp {
	r, ok := st.Regions[req.Name]
	if !ok {
		return Resp{Err: fmt.Errorf("%w: %q", ErrNotFound, req.Name)}
	}
	set := st.OpenBy[req.Name]
	if set == nil {
		set = make(map[int]bool)
		st.OpenBy[req.Name] = set
	}
	set[req.ClientCPU] = true
	m.programRegion(ctx.Process, st, req.Name)
	m.checkpoint(ctx, st)
	return Resp{Info: m.info(r)}
}

func (m *Manager) handleClose(ctx *cluster.PairCtx, st *VolumeState, req CloseReq) Resp {
	if _, ok := st.Regions[req.Name]; !ok {
		return Resp{Err: fmt.Errorf("%w: %q", ErrNotFound, req.Name)}
	}
	if set := st.OpenBy[req.Name]; set != nil {
		delete(set, req.ClientCPU)
		if len(set) == 0 {
			delete(st.OpenBy, req.Name)
		}
	}
	m.programRegion(ctx.Process, st, req.Name)
	m.checkpoint(ctx, st)
	return Resp{}
}

func (m *Manager) handleDelete(ctx *cluster.PairCtx, st *VolumeState, req DeleteReq) Resp {
	r, ok := st.Regions[req.Name]
	if !ok {
		return Resp{Err: fmt.Errorf("%w: %q", ErrNotFound, req.Name)}
	}
	if len(st.OpenBy[req.Name]) > 0 {
		return Resp{Err: fmt.Errorf("%w: %q", ErrBusy, req.Name)}
	}
	delete(st.Regions, req.Name)
	if err := m.persist(ctx, st); err != nil {
		st.Regions[req.Name] = r
		return Resp{Err: err}
	}
	m.checkpoint(ctx, st)
	return Resp{}
}

// handleResilver copies every region extent from the primary device to
// the mirror (or the reverse if the primary is the one that was down),
// restoring full redundancy. The copy flows through the PMM's CPU as
// RDMA reads and writes in chunks, so it costs realistic fabric time and
// bandwidth. Client region access continues throughout — resilvering is
// an online repair.
func (m *Manager) handleResilver(ctx *cluster.PairCtx, st *VolumeState) ResilverResp {
	if m.primDev == m.mirrDev {
		return ResilverResp{} // unmirrored volume: nothing to repair
	}
	src, dst := m.primDev, m.mirrDev
	if !src.Powered() || !src.Endpoint().Up() {
		src, dst = dst, src
	}
	if !src.Powered() || !src.Endpoint().Up() || !dst.Powered() || !dst.Endpoint().Up() {
		return ResilverResp{Err: ErrVolumeDown}
	}
	// The repair path needs management windows that cover region space on
	// both devices for this CPU; install a dedicated full-device window.
	m.programManagement(ctx)
	cpuEP := ctx.CPU().Endpoint().ID()
	const repairBase = uint32(0xF0000000)
	for _, d := range []*npmu.Device{src, dst} {
		ep, st := d.Endpoint(), d.Store()
		capBytes := d.Capacity()
		m.cl.RunOn(ctx.Process, m.cl.NodeOf(ep.ID()), func() {
			ep.UnmapWindow(repairBase)
			ep.MapWindow(repairBase, uint32(capBytes-MetaBytes), st, MetaBytes, servernet.Perm{
				Read: true, Write: true,
				Initiators: map[servernet.EndpointID]bool{cpuEP: true},
			})
		})
	}
	for _, d := range []*npmu.Device{src, dst} {
		ep := d.Endpoint()
		defer m.cl.RunOn(ctx.Process, m.cl.NodeOf(ep.ID()), func() { ep.UnmapWindow(repairBase) })
	}

	fab := ctx.CPU().Fabric()
	const chunk = 256 << 10
	buf := make([]byte, chunk)
	var copied int64
	for _, r := range st.sortedRegions() {
		for off := int64(0); off < r.Size; off += chunk {
			n := r.Size - off
			if n > chunk {
				n = chunk
			}
			nva := repairBase + uint32(r.Offset-MetaBytes+off)
			if err := fab.RDMARead(ctx.Sim(), cpuEP, src.EndpointID(), nva, buf[:n]); err != nil {
				return ResilverResp{BytesCopied: copied, Err: err}
			}
			if err := fab.RDMAWrite(ctx.Sim(), cpuEP, dst.EndpointID(), nva, buf[:n]); err != nil {
				return ResilverResp{BytesCopied: copied, Err: err}
			}
			copied += n
		}
	}
	// Rewrite durable metadata on both devices (the returned device's
	// copy may be stale or empty) and reinstall region translations.
	if err := m.persist(ctx, st); err != nil {
		return ResilverResp{BytesCopied: copied, Err: err}
	}
	for _, name := range sortedOpen(st) {
		m.programRegion(ctx.Process, st, name)
	}
	m.Resilvers++
	return ResilverResp{BytesCopied: copied}
}

// sortedOpen returns the names of open regions in sorted order. Window
// (re)programming appends to device address-translation tables, so the
// programming sequence must not follow map iteration order.
func sortedOpen(st *VolumeState) []string {
	names := make([]string, 0, len(st.OpenBy))
	//simlint:ordered -- collected into a slice and sorted below
	for name := range st.OpenBy {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// programManagement maps the metadata area of both devices for the PMM's
// current CPU only. ATT state belongs to each device's owner node, so in
// a partitioned cluster the mutation executes there via the remote-exec
// seam (inline on a single-engine cluster).
func (m *Manager) programManagement(ctx *cluster.PairCtx) {
	cpuEP := ctx.CPU().Endpoint().ID()
	for _, d := range m.devices() {
		ep, st := d.Endpoint(), d.Store()
		m.cl.RunOn(ctx.Process, m.cl.NodeOf(ep.ID()), func() {
			ep.UnmapWindow(0)
			ep.MapWindow(0, MetaBytes, st, 0, servernet.Perm{
				Read:       true,
				Write:      true,
				Initiators: map[servernet.EndpointID]bool{cpuEP: true},
			})
		})
	}
}

// programRegion (re)installs the ATT entry for one region on both devices,
// granting access to exactly the CPUs that hold it open. Like
// programManagement, the ATT writes run on each device's owner node.
func (m *Manager) programRegion(p *cluster.Process, st *VolumeState, name string) {
	r := st.Regions[name]
	if r == nil {
		return
	}
	base := uint32(r.Offset)
	set := st.OpenBy[name]
	var initiators map[servernet.EndpointID]bool
	if len(set) > 0 {
		initiators = make(map[servernet.EndpointID]bool, len(set))
		//simlint:ordered -- builds a lookup set; insertion order is invisible
		for cpu := range set {
			initiators[m.cl.CPU(cpu).Endpoint().ID()] = true
		}
	}
	for _, d := range m.devices() {
		ep, store := d.Endpoint(), d.Store()
		m.cl.RunOn(p, m.cl.NodeOf(ep.ID()), func() {
			ep.UnmapWindow(base)
			if initiators == nil {
				return
			}
			ep.MapWindow(base, uint32(r.Size), store, r.Offset, servernet.Perm{
				Read: true, Write: true, Initiators: initiators,
			})
		})
	}
}

// persist durably writes the metadata to the next slot of every powered
// device, advancing the generation. It fails only if no device accepted
// the write.
func (m *Manager) persist(ctx *cluster.PairCtx, st *VolumeState) error {
	st.Gen++
	img, err := EncodeMeta(st)
	if err != nil {
		st.Gen--
		return err
	}
	fab := ctx.CPU().Fabric()
	from := ctx.CPU().Endpoint().ID()
	okCount := 0
	for _, d := range m.devices() {
		nva := uint32(slotOffset(st.Gen))
		if werr := fab.RDMAWrite(ctx.Sim(), from, d.EndpointID(), nva, img); werr == nil {
			okCount++
			m.MetaWrites++
		}
	}
	if okCount == 0 {
		st.Gen--
		return ErrVolumeDown
	}
	return nil
}

// checkpoint sends the full state to the backup (sized by a rough wire
// estimate; the PMM table is small).
func (m *Manager) checkpoint(ctx *cluster.PairCtx, st *VolumeState) {
	sz := 64
	//simlint:ordered -- commutative size sum
	for _, r := range st.Regions {
		sz += 32 + len(r.Name) + len(r.Owner)
	}
	ctx.Checkpoint(sz, st.Clone())
}

// recoverOrFormat performs a cold start: it tries to load valid metadata
// from either device (preferring the newest generation) and, finding
// none, formats the volume with a fresh empty table.
func (m *Manager) recoverOrFormat(ctx *cluster.PairCtx) *VolumeState {
	best := m.loadBest(ctx)
	if best != nil {
		m.Recoveries++
		best.OpenBy = make(map[string]map[int]bool) // opens do not survive restart
		return best
	}
	st := NewVolumeState(m.name)
	m.programManagement(ctx)
	if err := m.persist(ctx, st); err == nil {
		m.formatOK = true
	}
	m.checkpoint(ctx, st)
	return st
}

// loadBest reads all four metadata slots (two per device) over RDMA and
// returns the decoded state with the highest generation, or nil.
func (m *Manager) loadBest(ctx *cluster.PairCtx) *VolumeState {
	m.programManagement(ctx)
	fab := ctx.CPU().Fabric()
	from := ctx.CPU().Endpoint().ID()
	var best *VolumeState
	buf := make([]byte, MetaSlotBytes)
	for _, d := range m.devices() {
		for slot := uint64(0); slot < 2; slot++ {
			nva := uint32(slotOffset(slot))
			if err := fab.RDMARead(ctx.Sim(), from, d.EndpointID(), nva, buf); err != nil {
				continue
			}
			st, err := DecodeMeta(buf)
			if err != nil {
				continue
			}
			if best == nil || st.Gen > best.Gen {
				best = st
			}
		}
	}
	return best
}
