package pmm

import (
	"errors"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleState() *VolumeState {
	st := NewVolumeState("$PM1")
	st.Gen = 7
	st.Regions["adp-log-0"] = &RegionMeta{Name: "adp-log-0", Owner: "$ADP0", Offset: MetaBytes, Size: 1 << 20}
	st.Regions["tcb"] = &RegionMeta{Name: "tcb", Owner: "$TMF", Offset: MetaBytes + 1<<20, Size: 4096}
	return st
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	st := sampleState()
	img, err := EncodeMeta(st)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMeta(img)
	if err != nil {
		t.Fatal(err)
	}
	if got.Volume != st.Volume || got.Gen != st.Gen {
		t.Errorf("volume/gen = %q/%d, want %q/%d", got.Volume, got.Gen, st.Volume, st.Gen)
	}
	if !reflect.DeepEqual(got.Regions, st.Regions) {
		t.Errorf("regions = %+v, want %+v", got.Regions, st.Regions)
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	img := make([]byte, 100)
	if _, err := DecodeMeta(img); !errors.Is(err, ErrNoMetadata) {
		t.Errorf("err = %v, want ErrNoMetadata", err)
	}
}

func TestDecodeRejectsCorruptPayload(t *testing.T) {
	img, _ := EncodeMeta(sampleState())
	img[30] ^= 0xFF // flip a payload bit; CRC must catch it
	if _, err := DecodeMeta(img); !errors.Is(err, ErrCorruptMetadata) {
		t.Errorf("err = %v, want ErrCorruptMetadata", err)
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	img, _ := EncodeMeta(sampleState())
	// Claim a payload longer than the slot.
	img[16] = 0xFF
	img[17] = 0xFF
	if _, err := DecodeMeta(img); !errors.Is(err, ErrCorruptMetadata) {
		t.Errorf("err = %v, want ErrCorruptMetadata", err)
	}
}

func TestAllocateFirstFit(t *testing.T) {
	const total = MetaBytes + 10<<20
	st := NewVolumeState("v")
	off1, err := st.Allocate(1<<20, total)
	if err != nil {
		t.Fatal(err)
	}
	if off1 != MetaBytes {
		t.Errorf("first allocation at %d, want %d (after metadata)", off1, MetaBytes)
	}
	st.Regions["a"] = &RegionMeta{Name: "a", Offset: off1, Size: 1 << 20}
	off2, _ := st.Allocate(1<<20, total)
	if off2 != off1+1<<20 {
		t.Errorf("second allocation at %d, want %d", off2, off1+1<<20)
	}
	st.Regions["b"] = &RegionMeta{Name: "b", Offset: off2, Size: 1 << 20}

	// Delete the first region: its gap is reused first-fit.
	delete(st.Regions, "a")
	off3, _ := st.Allocate(512<<10, total)
	if off3 != off1 {
		t.Errorf("gap reuse at %d, want %d", off3, off1)
	}
}

func TestAllocateFull(t *testing.T) {
	const total = MetaBytes + 1<<20
	st := NewVolumeState("v")
	if _, err := st.Allocate(2<<20, total); err == nil {
		t.Error("oversized allocation succeeded")
	}
	if _, err := st.Allocate(0, total); err == nil {
		t.Error("zero-size allocation succeeded")
	}
}

func TestSlotAlternation(t *testing.T) {
	if slotOffset(1) == slotOffset(2) {
		t.Error("consecutive generations use the same slot")
	}
	if slotOffset(1) != slotOffset(3) {
		t.Error("slot assignment not alternating")
	}
}

func TestCloneIndependence(t *testing.T) {
	st := sampleState()
	st.OpenBy["tcb"] = map[int]bool{2: true}
	c := st.Clone()
	c.Regions["tcb"].Size = 1
	c.OpenBy["tcb"][3] = true
	if st.Regions["tcb"].Size == 1 {
		t.Error("Clone aliases region metadata")
	}
	if st.OpenBy["tcb"][3] {
		t.Error("Clone aliases open sets")
	}
}

// Property: encode/decode round-trips arbitrary region tables.
func TestMetaRoundTripProperty(t *testing.T) {
	type spec struct {
		Name  string
		Owner string
		Off   uint32
		Size  uint32
	}
	prop := func(vol string, specs []spec, gen uint64) bool {
		if len(vol) > 200 {
			vol = vol[:200]
		}
		st := NewVolumeState(vol)
		st.Gen = gen
		for i, sp := range specs {
			if len(specs) > 64 && i >= 64 {
				break
			}
			name := sp.Name
			if len(name) > 100 {
				name = name[:100]
			}
			if name == "" || st.Regions[name] != nil {
				continue
			}
			st.Regions[name] = &RegionMeta{
				Name: name, Owner: sp.Owner,
				Offset: int64(sp.Off), Size: int64(sp.Size),
			}
		}
		img, err := EncodeMeta(st)
		if err != nil {
			return true // oversized tables are allowed to fail encode
		}
		got, err := DecodeMeta(img)
		if err != nil {
			return false
		}
		return got.Volume == st.Volume && got.Gen == st.Gen &&
			reflect.DeepEqual(got.Regions, st.Regions)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
