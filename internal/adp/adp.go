// Package adp implements the Audit Data Process — the NSK log writer the
// paper's prototype modified (§4.2). The ADP runs as a process pair and
// owns one audit-trail stream. Database writers send it audit deltas;
// the transaction monitor asks it to make the trail durable through a
// given LSN before transactions commit.
//
// Two durability backends are provided:
//
//   - Disk: the standard configuration. Appends are buffered in process
//     memory (and checkpointed to the backup so an ADP failure loses no
//     audit), and flushes write the buffer sequentially to an audit disk
//     volume. Concurrent commit requests piggyback on in-progress flushes
//     — classic group commit, which is what makes boxcarring matter.
//   - PM: the paper's modification. Every append is synchronously RDMA-
//     written to a mirrored persistent-memory region, so the trail is
//     durable immediately, flushes are no-ops, and the data-checkpoint to
//     the backup disappears (§3.4's "eliminates repeated persistence
//     actions").
package adp

import (
	"fmt"

	"persistmem/internal/audit"
	"persistmem/internal/cluster"
	"persistmem/internal/disk"
	"persistmem/internal/metrics"
	"persistmem/internal/pmclient"
	"persistmem/internal/sim"
)

// Mode selects the durability backend.
type Mode int

// Durability backends.
const (
	// Disk flushes audit to a disk volume at commit time.
	Disk Mode = iota
	// PM writes audit synchronously to persistent memory on append.
	PM
)

// String names the mode.
func (m Mode) String() string {
	if m == PM {
		return "pm"
	}
	return "disk"
}

// Config describes one ADP instance.
type Config struct {
	// Name is the service name (e.g. "$ADP0").
	Name string
	// PrimaryCPU and BackupCPU place the process pair.
	PrimaryCPU, BackupCPU int
	// Mode selects the durability backend.
	Mode Mode

	// Volume is the audit disk volume (Disk mode).
	Volume *disk.Volume

	// PMVolume names the PM volume's PMM service (PM mode); RegionSize is
	// the log region's size — the log wraps within it (old audit is
	// reclaimable after data volumes destage).
	PMVolume   string
	RegionSize int64

	// NoGroupCommit disables flush piggybacking: each commit performs its
	// own device flush (the A1 ablation).
	NoGroupCommit bool

	// RequestCPU is the log writer's CPU cost per request handled.
	RequestCPU sim.Time
	// FlushCPU is the extra CPU per physical flush.
	FlushCPU sim.Time

	// Metrics optionally wires boxcar (group-commit) spans and PM write
	// spans into a store-wide registry. Nil disables all recording.
	Metrics *metrics.Registry
}

// protocol messages
type (
	// AppendReq adds pre-encoded audit records to the trail.
	AppendReq struct {
		Data []byte
	}
	// AppendResp acknowledges an append. In PM mode the bytes are already
	// durable; in Disk mode they are buffered and backup-protected.
	AppendResp struct {
		// End is the LSN just past the appended bytes.
		End audit.LSN
		Err error
	}
	// CommitReq appends a commit record for Txn and replies once it (and
	// all earlier audit) is durable. A non-empty Outcome upgrades the
	// record to a cross-shard outcome record (audit.RecOutcome) whose body
	// carries the encoded outcome — the commit point for two-phase
	// transactions.
	CommitReq struct {
		Txn     audit.TxnID
		Outcome []byte
	}
	// CommitResp reports the durable commit.
	CommitResp struct {
		LSN audit.LSN
		Err error
	}
	// AbortReq appends an abort record (lazily durable).
	AbortReq struct {
		Txn audit.TxnID
	}
	// FlushReq asks for durability through UpTo.
	FlushReq struct {
		UpTo audit.LSN
	}
	// FlushResp acknowledges durability through Durable.
	FlushResp struct {
		Durable audit.LSN
		Err     error
	}
	// StateReq asks for a Stats snapshot (tests and harnesses).
	StateReq struct{}
)

// Stats describes an ADP's activity.
type Stats struct {
	Mode        Mode
	NextLSN     audit.LSN
	DurableLSN  audit.LSN
	Appends     int64
	AppendBytes int64
	Flushes     int64 // physical device flushes (Disk mode)
	FlushBytes  int64
	Commits     int64
	Aborts      int64
	// GroupedCommits counts commit/flush waiters satisfied by a flush
	// they shared with others (group-commit effectiveness).
	GroupedCommits int64
	// PMWrites counts synchronous PM writes (PM mode; each is mirrored,
	// so bytes hit two NPMUs).
	PMWrites int64
	PMBytes  int64
}

// adpState is the checkpointable log-writer state.
type adpState struct {
	nextLSN    audit.LSN
	durableLSN audit.LSN
	// buf holds encoded-but-unflushed audit (Disk mode); bufStart is the
	// LSN of buf[0].
	buf      []byte
	bufStart audit.LSN
}

func (s *adpState) clone() *adpState {
	c := *s
	c.buf = append([]byte(nil), s.buf...)
	return &c
}

// ckDelta is the checkpoint wire format: instead of cloning the whole
// buffered trail per append, the primary ships only the appended bytes
// plus the control fields, and the backup folds them into its own state
// image (the NSK absorb pattern). data aliases primary memory, which is
// safe because Checkpoint is a synchronous call: the backup copies the
// bytes out before replying, and the primary is parked until then.
type ckDelta struct {
	data       []byte
	reset      bool // buffer flushed: drop absorbed bytes first
	nextLSN    audit.LSN
	durableLSN audit.LSN
	bufStart   audit.LSN
}

// absorbDelta folds one checkpointed delta into the backup's state image.
func absorbDelta(cur, delta interface{}) interface{} {
	st, _ := cur.(*adpState)
	if st == nil {
		st = &adpState{}
	}
	d := delta.(*ckDelta)
	if d.reset {
		st.buf = st.buf[:0]
	}
	st.buf = append(st.buf, d.data...)
	st.nextLSN = d.nextLSN
	st.durableLSN = d.durableLSN
	st.bufStart = d.bufStart
	return st
}

// ADP is a running audit data process pair.
type ADP struct {
	cl   *cluster.Cluster
	cfg  Config
	pair *cluster.Pair

	stats Stats

	// ckfree recycles ckDelta boxes (absorbed synchronously, so a box is
	// reusable as soon as Checkpoint returns).
	ckfree []*ckDelta //simlint:box -- checkpoint-delta pool

	// Instrument pointers, nil when unmetered (methods on m nil-short-
	// circuit; mFlush is copied out so no field access touches a nil
	// bundle on the hot path).
	m      *metrics.ADPSpans
	mFlush *metrics.LatencyHist
}

// Start launches the ADP process pair.
func Start(cl *cluster.Cluster, cfg Config) *ADP {
	if cfg.RequestCPU == 0 {
		cfg.RequestCPU = 10 * sim.Microsecond
	}
	if cfg.FlushCPU == 0 {
		cfg.FlushCPU = 30 * sim.Microsecond
	}
	if cfg.Mode == Disk && cfg.Volume == nil {
		panic("adp: Disk mode requires a volume")
	}
	if cfg.Mode == PM && cfg.PMVolume == "" {
		panic("adp: PM mode requires a PM volume name")
	}
	if cfg.RegionSize == 0 {
		cfg.RegionSize = 16 << 20
	}
	a := &ADP{cl: cl, cfg: cfg}
	if cfg.Metrics != nil {
		a.m = cfg.Metrics.ADP
		a.mFlush = cfg.Metrics.ADP.FlushDisk
	}
	a.stats.Mode = cfg.Mode
	a.pair = cl.StartPairAbsorb(cfg.Name, cfg.PrimaryCPU, cfg.BackupCPU, a.serve, absorbDelta)
	return a
}

// Name returns the ADP service name.
func (a *ADP) Name() string { return a.cfg.Name }

// Pair returns the process pair, for fault injection.
func (a *ADP) Pair() *cluster.Pair { return a.pair }

// Stats returns a snapshot of activity counters.
func (a *ADP) Stats() Stats {
	return a.stats
}

// Stop shuts the ADP down.
func (a *ADP) Stop() { a.pair.Stop() }

// RegionName returns the PM log region name for this ADP.
func (a *ADP) RegionName() string { return a.cfg.Name + "-log" }

// waiter is a pending commit/flush reply.
type flushWaiter struct {
	upTo audit.LSN
	ev   cluster.Envelope
	kind audit.RecType // RecCommit for commits, 0 for plain flushes
	enq  sim.Time      // when the waiter joined the boxcar
}

func (a *ADP) serve(ctx *cluster.PairCtx) {
	st := &adpState{}
	if ctx.Restored != nil {
		// Clone: while the pair runs unprotected, checkpoints absorb into
		// the pair's shadow state, which must not alias the serving copy
		// (absorbing a delta whose data aliases st.buf would double it).
		st = ctx.Restored.(*adpState).clone()
	}

	var region *pmclient.Region
	if a.cfg.Mode == PM {
		region = a.openRegion(ctx)
		if region == nil {
			return // PM volume unreachable; pair retires
		}
	}

	// scratch holds one encoded control record at a time. The serve loop
	// is a single simulated process and both backends copy the bytes out
	// before append returns, so the buffer is reusable across requests.
	// batch and waiters are likewise reused across loop iterations.
	var scratch []byte
	var batch []cluster.Envelope
	var waiters []flushWaiter

	for {
		batch = append(batch[:0], ctx.Recv())
		if !a.cfg.NoGroupCommit {
			for {
				more, ok := ctx.TryRecv()
				if !ok {
					break
				}
				batch = append(batch, more)
			}
		}

		waiters = waiters[:0]
		for _, ev := range batch {
			ctx.Compute(a.cfg.RequestCPU)
			// Requests arrive as values (tests, legacy callers) or as
			// pointers into their senders' free lists (the zero-alloc client
			// paths); a pointer box is recycled by its sender only after the
			// reply, so dereferencing here is safe.
			switch req := ev.Payload.(type) {
			case *AppendReq:
				a.handleAppend(ctx, st, region, ev, req.Data)
			case AppendReq:
				a.handleAppend(ctx, st, region, ev, req.Data)
			case *CommitReq:
				waiters = a.handleCommit(ctx, st, region, &scratch, waiters, ev, req.Txn, req.Outcome)
			case CommitReq:
				waiters = a.handleCommit(ctx, st, region, &scratch, waiters, ev, req.Txn, req.Outcome)
			case *AbortReq:
				a.handleAbort(ctx, st, region, &scratch, ev, req.Txn)
			case AbortReq:
				a.handleAbort(ctx, st, region, &scratch, ev, req.Txn)
			case *FlushReq:
				a.m.OnWaiterIn()
				waiters = append(waiters, flushWaiter{upTo: req.UpTo, ev: ev, enq: ctx.Process.Now()})
			case FlushReq:
				a.m.OnWaiterIn()
				waiters = append(waiters, flushWaiter{upTo: req.UpTo, ev: ev, enq: ctx.Process.Now()})
			case StateReq:
				s := a.stats
				s.NextLSN = st.nextLSN
				s.DurableLSN = st.durableLSN
				ev.Reply(s)
			default:
				ev.Reply(FlushResp{Err: fmt.Errorf("adp: unknown request %T", req)})
			}
		}

		if len(waiters) == 0 {
			continue // appends checkpointed individually before their acks
		}

		// Make the trail durable through the highest requested LSN. In PM
		// mode appends already were; in Disk mode this is the group-commit
		// flush: every waiter in this batch shares one device write.
		var err error
		if a.cfg.Mode == Disk {
			err = a.flushDisk(ctx, st)
			a.checkpoint(ctx, st, 0, true) // buffer drained, durableLSN advanced
		}
		if len(waiters) > 1 {
			a.stats.GroupedCommits += int64(len(waiters))
		}
		durableAt := ctx.Process.Now()
		for _, w := range waiters {
			// Every reply — success or error — takes its waiter out of the
			// boxcar, keeping In == Flushed + Pending balanced; only waiters
			// lost to a killed primary stay Pending.
			a.m.OnWaiterFlushed(durableAt - w.enq)
			if err != nil {
				if w.kind == audit.RecCommit {
					w.ev.Reply(CommitResp{Err: err})
				} else {
					w.ev.Reply(FlushResp{Err: err})
				}
				continue
			}
			if w.kind == audit.RecCommit {
				w.ev.Reply(CommitResp{LSN: w.upTo})
			} else {
				w.ev.Reply(FlushResp{Durable: st.durableLSN})
			}
		}
	}
}

//simlint:hotpath
func (a *ADP) handleAppend(ctx *cluster.PairCtx, st *adpState, region *pmclient.Region, ev cluster.Envelope, data []byte) {
	end, err := a.append(ctx, st, region, data)
	a.stats.Appends++
	a.stats.AppendBytes += int64(len(data))
	ev.Reply(AppendResp{End: end, Err: err}) //simlint:allow hotalloc -- reply carries a per-call LSN; one box per audit batch (not per txn) is accepted
}

//simlint:hotpath
func (a *ADP) handleCommit(ctx *cluster.PairCtx, st *adpState, region *pmclient.Region, scratch *[]byte, waiters []flushWaiter, ev cluster.Envelope, txn audit.TxnID, outcome []byte) []flushWaiter {
	rec := audit.Record{Type: audit.RecCommit, Txn: txn}
	if len(outcome) > 0 {
		rec.Type, rec.Body = audit.RecOutcome, outcome
	}
	*scratch = audit.AppendRecord((*scratch)[:0], &rec)
	end, err := a.append(ctx, st, region, *scratch)
	if err != nil {
		ev.Reply(CommitResp{Err: err}) //simlint:allow hotalloc -- append-failure path, cold
		return waiters
	}
	a.stats.Commits++
	a.m.OnWaiterIn()
	return append(waiters, flushWaiter{upTo: end, ev: ev, kind: audit.RecCommit, enq: ctx.Process.Now()})
}

func (a *ADP) handleAbort(ctx *cluster.PairCtx, st *adpState, region *pmclient.Region, scratch *[]byte, ev cluster.Envelope, txn audit.TxnID) {
	rec := audit.Record{Type: audit.RecAbort, Txn: txn}
	*scratch = audit.AppendRecord((*scratch)[:0], &rec)
	a.append(ctx, st, region, *scratch)
	a.stats.Aborts++
	ev.Reply(FlushResp{Durable: st.durableLSN})
}

// append adds encoded records to the trail. Disk mode buffers; PM mode
// writes through synchronously to the mirrored region.
func (a *ADP) append(ctx *cluster.PairCtx, st *adpState, region *pmclient.Region, data []byte) (audit.LSN, error) {
	start := st.nextLSN
	end := start + audit.LSN(len(data))
	switch a.cfg.Mode {
	case Disk:
		if len(st.buf) == 0 {
			st.bufStart = start
		}
		st.buf = append(st.buf, data...)
		st.nextLSN = end
		// The unflushed buffer must survive an ADP process failure:
		// checkpoint the delta to the backup before acknowledging.
		a.checkpoint(ctx, st, len(data), false)
	case PM:
		// Synchronous mirrored write; the log wraps within the region.
		off := int64(start) % a.cfg.RegionSize
		if err := a.writeWrapped(ctx, region, off, data); err != nil {
			return start, err
		}
		st.nextLSN = end
		st.durableLSN = end
		a.stats.PMWrites++
		a.stats.PMBytes += int64(len(data))
		// Only tiny control state needs backup protection now: the log
		// itself is already persistent.
		a.checkpoint(ctx, st, 0, false)
	}
	return end, nil
}

// writeWrapped performs a region write that may wrap the ring boundary.
func (a *ADP) writeWrapped(ctx *cluster.PairCtx, region *pmclient.Region, off int64, data []byte) error {
	size := a.cfg.RegionSize
	for len(data) > 0 {
		n := int64(len(data))
		if off+n > size {
			n = size - off
		}
		if err := region.Write(ctx.Process, off, data[:n]); err != nil {
			return err
		}
		data = data[n:]
		off = (off + n) % size
	}
	return nil
}

// flushDisk writes the buffered trail sequentially to the audit volume.
func (a *ADP) flushDisk(ctx *cluster.PairCtx, st *adpState) error {
	if len(st.buf) == 0 {
		return nil
	}
	fstart := ctx.Process.Now()
	ctx.Compute(a.cfg.FlushCPU)
	volOff := int64(st.bufStart) % a.cfg.Volume.Capacity()
	n := len(st.buf)
	if volOff+int64(n) > a.cfg.Volume.Capacity() {
		// Wrap the volume like a circular trail (auxiliary audit volumes
		// are recycled after control points).
		first := a.cfg.Volume.Capacity() - volOff
		if err := a.cfg.Volume.Write(ctx.Sim(), volOff, st.buf[:first]); err != nil {
			return err
		}
		if err := a.cfg.Volume.Write(ctx.Sim(), 0, st.buf[first:]); err != nil {
			return err
		}
	} else if err := a.cfg.Volume.Write(ctx.Sim(), volOff, st.buf); err != nil {
		return err
	}
	a.stats.Flushes++
	a.stats.FlushBytes += int64(n)
	a.mFlush.Record(ctx.Process.Now() - fstart)
	st.durableLSN = st.bufStart + audit.LSN(n)
	st.buf = st.buf[:0]
	st.bufStart = st.durableLSN
	return nil
}

// checkpoint protects state at the backup. deltaBytes sizes the wire
// payload: in Disk mode the appended audit must cross to the backup; in
// PM mode only counters do. The payload is a delta (the last deltaBytes
// of the buffer plus control fields), not a state clone; the backup's
// absorbDelta reconstructs the full image.
//
//simlint:hotpath
func (a *ADP) checkpoint(ctx *cluster.PairCtx, st *adpState, deltaBytes int, reset bool) {
	sz := 48 + deltaBytes
	d := a.newDelta()
	if deltaBytes > 0 {
		d.data = st.buf[len(st.buf)-deltaBytes:]
	}
	d.reset = reset
	d.nextLSN = st.nextLSN
	d.durableLSN = st.durableLSN
	d.bufStart = st.bufStart
	if err := ctx.Checkpoint(sz, d); err == nil { //simlint:allow hotalloc -- *ckDelta is pointer-shaped: no box is allocated
		// Absorbed (or folded into the shadow state) synchronously. On
		// error the delta may still sit undelivered in the backup's inbox,
		// so the box cannot be recycled.
		a.freeDelta(d)
	}
}

//simlint:hotpath
func (a *ADP) newDelta() *ckDelta {
	if n := len(a.ckfree); n > 0 {
		d := a.ckfree[n-1]
		a.ckfree[n-1] = nil
		a.ckfree = a.ckfree[:n-1]
		return d
	}
	return &ckDelta{}
}

//simlint:hotpath
func (a *ADP) freeDelta(d *ckDelta) {
	*d = ckDelta{}
	a.ckfree = append(a.ckfree, d)
}

// openRegion attaches to the PM volume and opens (creating if necessary)
// this ADP's log region.
func (a *ADP) openRegion(ctx *cluster.PairCtx) *pmclient.Region {
	vol := pmclient.Attach(a.cl, a.cfg.PMVolume)
	name := a.RegionName()
	for attempt := 0; attempt < 3; attempt++ {
		r, err := vol.Open(ctx.Process, name)
		if err == nil {
			if a.cfg.Metrics != nil {
				r.SetMetrics(a.cfg.Metrics.PM)
			}
			return r
		}
		if cerr := vol.Create(ctx.Process, name, a.cfg.RegionSize); cerr != nil {
			ctx.Wait(10 * sim.Millisecond)
		}
	}
	return nil
}
