package adp

import (
	"bytes"
	"testing"

	"persistmem/internal/audit"
	"persistmem/internal/cluster"
)

// TestCommitWithOutcomeWritesOutcomeRecord: a CommitReq carrying an
// outcome body must land an audit.RecOutcome frame — the cross-shard
// commit point — on the trail instead of a plain commit record, with the
// body passed through byte-for-byte (the ADP treats it as opaque; the
// TMF owns the encoding).
func TestCommitWithOutcomeWritesOutcomeRecord(t *testing.T) {
	eng, cl, _, vol := diskHarness(t, nil)
	data := appendRecords(1, 2, 256)
	outcome := []byte("opaque-outcome-body")
	cl.CPU(2).Spawn("client", func(p *cluster.Process) {
		if _, err := p.Call("$ADP0", len(data), AppendReq{Data: data}); err != nil {
			t.Fatalf("append: %v", err)
		}
		raw, err := p.Call("$ADP0", 64+len(outcome), CommitReq{Txn: 1, Outcome: outcome})
		if err != nil {
			t.Fatalf("commit: %v", err)
		}
		if resp := raw.(CommitResp); resp.Err != nil {
			t.Fatalf("commit resp err: %v", resp.Err)
		}
	})
	eng.Run()
	read := make([]byte, 64<<10)
	vol.Store().ReadAt(0, read)
	s := audit.NewScanner(read)
	var outcomes, commits int
	for s.Next() {
		rec := s.Record()
		switch rec.Type {
		case audit.RecOutcome:
			outcomes++
			if rec.Txn != 1 || !bytes.Equal(rec.Body, outcome) {
				t.Errorf("outcome record = %+v", rec)
			}
		case audit.RecCommit:
			commits++
		}
	}
	if outcomes != 1 || commits != 0 {
		t.Errorf("trail holds %d outcome and %d commit records, want 1 and 0", outcomes, commits)
	}
	eng.Shutdown()
}
