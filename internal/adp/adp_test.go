package adp

import (
	"testing"

	"persistmem/internal/audit"
	"persistmem/internal/cluster"
	"persistmem/internal/disk"
	"persistmem/internal/npmu"
	"persistmem/internal/pmm"
	"persistmem/internal/sim"
)

// diskHarness builds a cluster with one disk-mode ADP over a retaining
// audit volume.
func diskHarness(t *testing.T, tweak func(*Config)) (*sim.Engine, *cluster.Cluster, *ADP, *disk.Volume) {
	t.Helper()
	eng := sim.NewEngine(1)
	cl := cluster.New(eng, cluster.DefaultConfig())
	vol := disk.New(eng, "$AUDIT", disk.DefaultConfig(), 64<<20)
	cfg := Config{Name: "$ADP0", PrimaryCPU: 0, BackupCPU: 1, Mode: Disk, Volume: vol}
	if tweak != nil {
		tweak(&cfg)
	}
	return eng, cl, Start(cl, cfg), vol
}

// pmHarness builds a cluster with a PMM-managed mirrored pair and one
// PM-mode ADP.
func pmHarness(t *testing.T, regionSize int64) (*sim.Engine, *cluster.Cluster, *ADP, *npmu.Device) {
	t.Helper()
	eng := sim.NewEngine(1)
	cl := cluster.New(eng, cluster.DefaultConfig())
	a := npmu.New(cl, "npmu-a", 64<<20)
	b := npmu.New(cl, "npmu-b", 64<<20)
	pmm.Start(cl, "$PM1", 0, 1, a, b)
	adp := Start(cl, Config{
		Name: "$ADP0", PrimaryCPU: 2, BackupCPU: 3, Mode: PM,
		PMVolume: "$PM1", RegionSize: regionSize,
	})
	return eng, cl, adp, a
}

// appendRecords encodes n insert records of bodyLen bytes as one frame
// buffer.
func appendRecords(txn audit.TxnID, n, bodyLen int) []byte {
	var buf []byte
	for i := 0; i < n; i++ {
		buf = audit.AppendRecord(buf, &audit.Record{
			Type: audit.RecInsert, Txn: txn, File: "F",
			Key: uint64(i), Body: make([]byte, bodyLen),
		})
	}
	return buf
}

func TestDiskAppendThenCommitFlushes(t *testing.T) {
	eng, cl, _, vol := diskHarness(t, nil)
	data := appendRecords(1, 4, 1024)
	cl.CPU(2).Spawn("client", func(p *cluster.Process) {
		raw, err := p.Call("$ADP0", len(data), AppendReq{Data: data})
		if err != nil {
			t.Fatalf("append: %v", err)
		}
		resp := raw.(AppendResp)
		if resp.Err != nil || resp.End != audit.LSN(len(data)) {
			t.Fatalf("append resp = %+v", resp)
		}
		// Not yet durable: no flush has run.
		if st := stateOf(t, p); st.DurableLSN != 0 {
			t.Errorf("durable before commit: %v", st.DurableLSN)
		}
		craw, err := p.Call("$ADP0", 64, CommitReq{Txn: 1})
		if err != nil {
			t.Fatalf("commit: %v", err)
		}
		cresp := craw.(CommitResp)
		if cresp.Err != nil {
			t.Fatalf("commit resp err: %v", cresp.Err)
		}
		st := stateOf(t, p)
		if st.DurableLSN < resp.End {
			t.Errorf("durable %v < appended %v after commit", st.DurableLSN, resp.End)
		}
		if st.Flushes == 0 {
			t.Error("no physical flush recorded")
		}
	})
	eng.Run()
	// The records physically reached the audit volume.
	read := make([]byte, len(data))
	vol.Store().ReadAt(0, read)
	s := audit.NewScanner(read)
	count := 0
	for s.Next() {
		count++
	}
	if count != 4 {
		t.Errorf("audit volume holds %d records, want 4", count)
	}
	eng.Shutdown()
}

func stateOf(t *testing.T, p *cluster.Process) Stats {
	t.Helper()
	raw, err := p.Call("$ADP0", 32, StateReq{})
	if err != nil {
		t.Fatalf("state: %v", err)
	}
	return raw.(Stats)
}

func TestDiskGroupCommit(t *testing.T) {
	eng, cl, a, _ := diskHarness(t, nil)
	_ = a
	done := 0
	// Three committers fire at once; the flush batches them.
	for i := 0; i < 3; i++ {
		txn := audit.TxnID(i + 1)
		cl.CPU(2).Spawn("committer", func(p *cluster.Process) {
			p.Call("$ADP0", 1024, AppendReq{Data: appendRecords(txn, 1, 512)})
			raw, err := p.Call("$ADP0", 64, CommitReq{Txn: txn})
			if err != nil || raw.(CommitResp).Err != nil {
				t.Errorf("commit %d failed", txn)
				return
			}
			done++
		})
	}
	eng.Run()
	if done != 3 {
		t.Fatalf("%d/3 commits", done)
	}
	var st Stats
	cl.CPU(2).Spawn("probe", func(p *cluster.Process) { st = stateOf(t, p) })
	eng.Run()
	if st.Flushes >= 3 {
		t.Errorf("flushes = %d; group commit should share flushes across 3 commits", st.Flushes)
	}
	if st.GroupedCommits == 0 {
		t.Error("GroupedCommits = 0")
	}
	eng.Shutdown()
}

func TestNoGroupCommitFlushesPerCommit(t *testing.T) {
	eng, cl, _, _ := diskHarness(t, func(c *Config) { c.NoGroupCommit = true })
	for i := 0; i < 3; i++ {
		txn := audit.TxnID(i + 1)
		cl.CPU(2).Spawn("committer", func(p *cluster.Process) {
			p.Call("$ADP0", 512, AppendReq{Data: appendRecords(txn, 1, 256)})
			p.Call("$ADP0", 64, CommitReq{Txn: txn})
		})
	}
	eng.Run()
	var st Stats
	cl.CPU(2).Spawn("probe", func(p *cluster.Process) { st = stateOf(t, p) })
	eng.Run()
	if st.Flushes != 3 {
		t.Errorf("flushes = %d, want 3 (one per commit)", st.Flushes)
	}
	eng.Shutdown()
}

func TestPMAppendDurableImmediately(t *testing.T) {
	eng, cl, a, dev := pmHarness(t, 1<<20)
	data := appendRecords(1, 2, 2048)
	cl.CPU(1).Spawn("client", func(p *cluster.Process) {
		raw, err := p.Call("$ADP0", len(data), AppendReq{Data: data})
		if err != nil {
			t.Fatalf("append: %v", err)
		}
		if raw.(AppendResp).Err != nil {
			t.Fatalf("append err: %v", raw.(AppendResp).Err)
		}
		st := stateOf(t, p)
		if st.DurableLSN != audit.LSN(len(data)) {
			t.Errorf("PM append not durable immediately: %v", st.DurableLSN)
		}
		if st.PMWrites == 0 {
			t.Error("no PM writes recorded")
		}
		// Commit is a fast no-flush acknowledgment.
		start := p.Now()
		p.Call("$ADP0", 64, CommitReq{Txn: 1})
		if took := p.Now() - start; took > sim.Millisecond {
			t.Errorf("PM commit took %v, want sub-millisecond", took)
		}
	})
	eng.Run()
	if a.Stats().Flushes != 0 {
		t.Errorf("PM mode performed %d disk flushes", a.Stats().Flushes)
	}
	// Bytes really landed in NPMU memory (region offset within device).
	if dev.Store().BytesWritten == 0 {
		t.Error("nothing written to NPMU")
	}
	eng.Shutdown()
}

func TestPMLogWrapsRing(t *testing.T) {
	// Region of 8 KB; append 3 x 4 KB: the third write wraps.
	eng, cl, _, _ := pmHarness(t, 8<<10)
	cl.CPU(1).Spawn("client", func(p *cluster.Process) {
		for i := 0; i < 3; i++ {
			data := appendRecords(audit.TxnID(i), 1, 4000)
			raw, err := p.Call("$ADP0", len(data), AppendReq{Data: data})
			if err != nil || raw.(AppendResp).Err != nil {
				t.Fatalf("append %d: %v / %v", i, err, raw)
			}
		}
		st := stateOf(t, p)
		if st.DurableLSN <= audit.LSN(8<<10) {
			t.Errorf("log did not pass the ring size: %v", st.DurableLSN)
		}
	})
	eng.Run()
	eng.Shutdown()
}

func TestDiskTakeoverKeepsUnflushedAudit(t *testing.T) {
	eng, cl, a, vol := diskHarness(t, nil)
	data := appendRecords(7, 3, 1024)
	cl.CPU(2).Spawn("client", func(p *cluster.Process) {
		raw, err := p.Call("$ADP0", len(data), AppendReq{Data: data})
		if err != nil || raw.(AppendResp).Err != nil {
			t.Fatalf("append: %v", err)
		}
		// Software fault kills the primary; the checkpointed buffer moves
		// to the backup.
		a.Pair().KillPrimary()
		deadline := p.Now() + 5*sim.Second
		for {
			raw, err := p.Call("$ADP0", 64, CommitReq{Txn: 7})
			if err == nil && raw.(CommitResp).Err == nil {
				break
			}
			if p.Now() > deadline {
				t.Fatal("commit never succeeded after takeover")
			}
			p.Wait(100 * sim.Millisecond)
		}
	})
	eng.Run()
	// The pre-failure records must be durable on the volume.
	read := make([]byte, len(data)+256)
	vol.Store().ReadAt(0, read)
	s := audit.NewScanner(read)
	inserts := 0
	for s.Next() {
		if s.Record().Type == audit.RecInsert && s.Record().Txn == 7 {
			inserts++
		}
	}
	if inserts != 3 {
		t.Errorf("found %d pre-failure records after takeover, want 3", inserts)
	}
	if a.Pair().Takeovers != 1 {
		t.Errorf("takeovers = %d", a.Pair().Takeovers)
	}
	eng.Shutdown()
}

func TestAbortIsLazy(t *testing.T) {
	eng, cl, _, _ := diskHarness(t, nil)
	cl.CPU(2).Spawn("client", func(p *cluster.Process) {
		p.Call("$ADP0", 256, AppendReq{Data: appendRecords(9, 1, 64)})
		start := p.Now()
		raw, err := p.Call("$ADP0", 64, AbortReq{Txn: 9})
		if err != nil {
			t.Fatalf("abort: %v", err)
		}
		if resp := raw.(FlushResp); resp.Err != nil {
			t.Fatalf("abort resp: %v", resp.Err)
		}
		if took := p.Now() - start; took > sim.Millisecond {
			t.Errorf("abort took %v; should not wait for a flush", took)
		}
		st := stateOf(t, p)
		if st.Aborts != 1 {
			t.Errorf("aborts = %d", st.Aborts)
		}
	})
	eng.Run()
	eng.Shutdown()
}

func TestFlushReqHonorsLSN(t *testing.T) {
	eng, cl, _, _ := diskHarness(t, nil)
	data := appendRecords(3, 2, 512)
	cl.CPU(2).Spawn("client", func(p *cluster.Process) {
		raw, _ := p.Call("$ADP0", len(data), AppendReq{Data: data})
		end := raw.(AppendResp).End
		fraw, err := p.Call("$ADP0", 64, FlushReq{UpTo: end})
		if err != nil {
			t.Fatalf("flush: %v", err)
		}
		resp := fraw.(FlushResp)
		if resp.Err != nil || resp.Durable < end {
			t.Errorf("flush resp = %+v, want durable >= %v", resp, end)
		}
	})
	eng.Run()
	eng.Shutdown()
}

func TestConfigValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	cl := cluster.New(eng, cluster.DefaultConfig())
	mustPanic := func(name string, cfg Config) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		Start(cl, cfg)
	}
	mustPanic("disk without volume", Config{Name: "$A", PrimaryCPU: 0, BackupCPU: 1, Mode: Disk})
	mustPanic("pm without volume name", Config{Name: "$B", PrimaryCPU: 0, BackupCPU: 1, Mode: PM})
}

func TestModeString(t *testing.T) {
	if Disk.String() != "disk" || PM.String() != "pm" {
		t.Errorf("mode strings: %q %q", Disk.String(), PM.String())
	}
}
