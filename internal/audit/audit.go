// Package audit defines the database audit trail (§1.2): the durable,
// LSN-ordered record of every change made by every transaction, from
// which transactions can be redone or undone, and which implicitly
// records the commit order.
//
// Records are length-prefixed, CRC-protected binary frames so that a
// recovery scan over a byte stream (read back from an audit disk volume
// or a PM region) can detect the torn tail of the log.
package audit

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// LSN is a log sequence number: the byte offset of a record's frame in
// its log stream. LSNs are per-log (each ADP owns one stream).
type LSN uint64

// TxnID identifies a transaction system-wide.
type TxnID uint64

// RecType enumerates audit record kinds.
type RecType uint8

// Audit record types.
const (
	// RecBegin marks a transaction's first activity.
	RecBegin RecType = iota + 1
	// RecInsert carries the after-image of an inserted row.
	RecInsert
	// RecUpdate carries the after-image of an updated row.
	RecUpdate
	// RecDelete marks a row removal.
	RecDelete
	// RecCommit marks a committed transaction (its commit point if this
	// log is the transaction's master log).
	RecCommit
	// RecAbort marks an aborted transaction.
	RecAbort
	// RecControlPoint is a periodic marker allowing log truncation: all
	// data records before the previous control point are destaged.
	RecControlPoint
	// RecPrepare marks a participant shard's vote in a cross-shard
	// two-phase commit: all of the transaction's data records on this
	// stream precede it and are durable with it. A prepared transaction
	// with no outcome record anywhere is presumed aborted at recovery.
	RecPrepare
	// RecOutcome is the coordinator's durable outcome record for a
	// cross-shard transaction: its body encodes the decided state and the
	// full participant list (see tmf.EncodeOutcome). It is the commit
	// point for two-phase transactions, subsuming RecCommit's role.
	RecOutcome
)

var typeNames = map[RecType]string{
	RecBegin: "BEGIN", RecInsert: "INSERT", RecUpdate: "UPDATE",
	RecDelete: "DELETE", RecCommit: "COMMIT", RecAbort: "ABORT",
	RecControlPoint: "CTRLPT", RecPrepare: "PREPARE", RecOutcome: "OUTCOME",
}

// String names the record type.
func (t RecType) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("RecType(%d)", uint8(t))
}

// Record is one audit record.
type Record struct {
	Type RecType
	Txn  TxnID
	// File and Partition locate the touched row for data records.
	File      string
	Partition uint16
	Key       uint64
	// Body is the after-image for data records.
	Body []byte
}

// Decode errors.
var (
	// ErrTornRecord means a frame failed its CRC or structure check —
	// the unflushed tail of a log after a crash.
	ErrTornRecord = errors.New("audit: torn or corrupt record")
	// ErrEndOfLog means a clean end of the record stream.
	ErrEndOfLog = errors.New("audit: end of log")
)

const frameHeader = 4 // u32 frame length (excluding itself)

// EncodedSize returns the frame size of r including length prefix and CRC.
func EncodedSize(r *Record) int {
	return frameHeader + 1 + 8 + 2 + len(r.File) + 2 + 8 + 4 + len(r.Body) + 4
}

// AppendRecord encodes r as one frame onto buf and returns the extended
// slice.
func AppendRecord(buf []byte, r *Record) []byte {
	if len(r.File) > 0xFFFF {
		panic("audit: file name too long")
	}
	start := len(buf)
	inner := EncodedSize(r) - frameHeader
	var scratch [8]byte
	binary.LittleEndian.PutUint32(scratch[:4], uint32(inner))
	buf = append(buf, scratch[:4]...)

	payloadStart := len(buf)
	buf = append(buf, byte(r.Type))
	binary.LittleEndian.PutUint64(scratch[:8], uint64(r.Txn))
	buf = append(buf, scratch[:8]...)
	binary.LittleEndian.PutUint16(scratch[:2], uint16(len(r.File)))
	buf = append(buf, scratch[:2]...)
	buf = append(buf, r.File...)
	binary.LittleEndian.PutUint16(scratch[:2], r.Partition)
	buf = append(buf, scratch[:2]...)
	binary.LittleEndian.PutUint64(scratch[:8], r.Key)
	buf = append(buf, scratch[:8]...)
	binary.LittleEndian.PutUint32(scratch[:4], uint32(len(r.Body)))
	buf = append(buf, scratch[:4]...)
	buf = append(buf, r.Body...)

	crc := crc32.ChecksumIEEE(buf[payloadStart:])
	binary.LittleEndian.PutUint32(scratch[:4], crc)
	buf = append(buf, scratch[:4]...)

	if len(buf)-start != EncodedSize(r) {
		panic("audit: EncodedSize mismatch")
	}
	return buf
}

// DecodeRecord parses one frame from the front of data, returning the
// record and the number of bytes consumed. A zero length prefix (or
// insufficient bytes) is treated as a clean ErrEndOfLog, since logs are
// scanned out of zero-initialized media; anything structurally wrong is
// ErrTornRecord.
func DecodeRecord(data []byte) (*Record, int, error) {
	if len(data) < frameHeader {
		return nil, 0, ErrEndOfLog
	}
	inner := binary.LittleEndian.Uint32(data)
	if inner == 0 {
		return nil, 0, ErrEndOfLog
	}
	// Smallest legal frame interior: fixed fields plus CRC, 29 bytes. The
	// length comparison is done in uint64: int(inner) would go negative on
	// 32-bit platforms for inner >= 2^31, slip past this check, and panic
	// in the slice expression below.
	if inner < 29 || uint64(inner) > uint64(len(data)-frameHeader) {
		return nil, 0, ErrTornRecord
	}
	payload := data[frameHeader : frameHeader+int(inner)-4]
	crc := binary.LittleEndian.Uint32(data[frameHeader+int(inner)-4:])
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, 0, ErrTornRecord
	}

	r := &Record{}
	pos := 0
	r.Type = RecType(payload[pos])
	pos++
	r.Txn = TxnID(binary.LittleEndian.Uint64(payload[pos:]))
	pos += 8
	fl := int(binary.LittleEndian.Uint16(payload[pos:]))
	pos += 2
	if pos+fl > len(payload) {
		return nil, 0, ErrTornRecord
	}
	r.File = string(payload[pos : pos+fl])
	pos += fl
	if pos+14 > len(payload) {
		return nil, 0, ErrTornRecord
	}
	r.Partition = binary.LittleEndian.Uint16(payload[pos:])
	pos += 2
	r.Key = binary.LittleEndian.Uint64(payload[pos:])
	pos += 8
	bl := int(binary.LittleEndian.Uint32(payload[pos:]))
	pos += 4
	if pos+bl != len(payload) {
		return nil, 0, ErrTornRecord
	}
	r.Body = append([]byte(nil), payload[pos:pos+bl]...)
	return r, frameHeader + int(inner), nil
}

// Scanner iterates the records of a log byte stream.
type Scanner struct {
	data []byte
	off  int
	err  error
	rec  *Record
	lsn  LSN
}

// NewScanner scans the given log bytes from the beginning.
func NewScanner(data []byte) *Scanner { return &Scanner{data: data} }

// Next advances to the next record, returning false at end of log or on a
// torn record (check Err to distinguish).
func (s *Scanner) Next() bool {
	if s.err != nil {
		return false
	}
	rec, n, err := DecodeRecord(s.data[s.off:])
	if err != nil {
		if !errors.Is(err, ErrEndOfLog) {
			s.err = err
		}
		return false
	}
	s.lsn = LSN(s.off)
	s.rec = rec
	s.off += n
	return true
}

// Record returns the current record.
func (s *Scanner) Record() *Record { return s.rec }

// LSN returns the current record's log sequence number.
func (s *Scanner) LSN() LSN { return s.lsn }

// Err returns a non-nil error if the scan stopped on a torn record.
func (s *Scanner) Err() error { return s.err }

// Offset returns the byte position after the last good record — where a
// recovered log would resume appending.
func (s *Scanner) Offset() int { return s.off }
