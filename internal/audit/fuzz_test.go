package audit

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// corpusFrames builds the seed corpus the way real runs produce log
// bytes: hot-stock-shaped inserts (4 KB bodies), the commit/abort records
// the monitor writes, and a control point — alone and concatenated.
func corpusFrames() [][]byte {
	body := bytes.Repeat([]byte{0xAB}, 4096)
	recs := []Record{
		{Type: RecInsert, Txn: 0x1000001, File: "TRADES", Partition: 3, Key: 1<<40 | 17, Body: body},
		{Type: RecInsert, Txn: 2, File: "T", Key: 1, Body: []byte{}},
		{Type: RecCommit, Txn: 0x1000001},
		{Type: RecAbort, Txn: 9},
		{Type: RecControlPoint, Txn: 0},
		{Type: RecType(200), Txn: ^TxnID(0), File: "x", Partition: 0xFFFF, Key: ^uint64(0), Body: []byte("tail")},
	}
	var out [][]byte
	var all []byte
	for i := range recs {
		frame := AppendRecord(nil, &recs[i])
		out = append(out, frame)
		all = append(all, frame...)
	}
	out = append(out, all)
	return out
}

// FuzzDecodeRecord asserts DecodeRecord is total over arbitrary bytes: it
// never panics, never over-consumes, and any frame it accepts re-encodes
// to the exact bytes it consumed (the encoding is canonical, so decode
// must be its inverse).
func FuzzDecodeRecord(f *testing.F) {
	for _, frame := range corpusFrames() {
		f.Add(frame)
	}
	// Truncations and corruptions of a real frame.
	base := corpusFrames()[0]
	f.Add(base[:len(base)-1])
	f.Add(base[:frameHeader+5])
	flip := append([]byte(nil), base...)
	flip[frameHeader+10] ^= 0xFF
	f.Add(flip)
	// Regression pin: a frame-length prefix with the top bit set. int32 of
	// it is negative; the pre-fix bounds check passed it on 32-bit
	// platforms and the payload slice expression panicked.
	f.Add([]byte{0x00, 0x00, 0x00, 0x80, 0x01, 0x02, 0x03})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	// Zero-filled media: clean end of log.
	f.Add(make([]byte, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := DecodeRecord(data)
		if err != nil {
			if rec != nil || n != 0 {
				t.Fatalf("error return leaked state: rec=%v n=%d", rec, n)
			}
			if !errors.Is(err, ErrEndOfLog) && !errors.Is(err, ErrTornRecord) {
				t.Fatalf("unexpected error kind: %v", err)
			}
			return
		}
		if n <= frameHeader || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if reenc := AppendRecord(nil, rec); !bytes.Equal(reenc, data[:n]) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", reenc, data[:n])
		}
	})
}

// FuzzScanner asserts a scan over arbitrary bytes terminates with the
// offset in bounds and strictly increasing per record.
func FuzzScanner(f *testing.F) {
	for _, frame := range corpusFrames() {
		f.Add(frame)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s := NewScanner(data)
		prev := 0
		for s.Next() {
			if s.Record() == nil {
				t.Fatal("Next true with nil record")
			}
			if int(s.LSN()) != prev {
				t.Fatalf("LSN %d != previous offset %d", s.LSN(), prev)
			}
			if s.Offset() <= prev || s.Offset() > len(data) {
				t.Fatalf("offset %d out of bounds (prev %d, len %d)", s.Offset(), prev, len(data))
			}
			prev = s.Offset()
		}
		if err := s.Err(); err != nil && !errors.Is(err, ErrTornRecord) {
			t.Fatalf("scan stopped with unexpected error: %v", err)
		}
	})
}

// TestDecodeRecordHugeLengthPrefix pins the 32-bit overflow fix outside
// the fuzz harness so it runs on every plain `go test`.
func TestDecodeRecordHugeLengthPrefix(t *testing.T) {
	for _, inner := range []uint32{1 << 31, ^uint32(0), 1<<31 + 29} {
		data := make([]byte, 64)
		binary.LittleEndian.PutUint32(data, inner)
		rec, n, err := DecodeRecord(data)
		if !errors.Is(err, ErrTornRecord) || rec != nil || n != 0 {
			t.Fatalf("inner=%#x: got rec=%v n=%d err=%v, want ErrTornRecord", inner, rec, n, err)
		}
	}
}
