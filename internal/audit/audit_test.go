package audit

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleRecords() []*Record {
	return []*Record{
		{Type: RecBegin, Txn: 1},
		{Type: RecInsert, Txn: 1, File: "TRADES", Partition: 2, Key: 1001, Body: bytes.Repeat([]byte{0xAB}, 4096)},
		{Type: RecInsert, Txn: 1, File: "ORDERS", Partition: 0, Key: 7, Body: []byte("x")},
		{Type: RecCommit, Txn: 1},
		{Type: RecBegin, Txn: 2},
		{Type: RecAbort, Txn: 2},
		{Type: RecControlPoint},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, r := range sampleRecords() {
		buf := AppendRecord(nil, r)
		if len(buf) != EncodedSize(r) {
			t.Errorf("%v: encoded %d bytes, EncodedSize says %d", r.Type, len(buf), EncodedSize(r))
		}
		got, n, err := DecodeRecord(buf)
		if err != nil {
			t.Fatalf("%v: decode: %v", r.Type, err)
		}
		if n != len(buf) {
			t.Errorf("%v: consumed %d of %d", r.Type, n, len(buf))
		}
		if got.Body == nil {
			got.Body = []byte{}
		}
		want := *r
		if want.Body == nil {
			want.Body = []byte{}
		}
		if !reflect.DeepEqual(*got, want) {
			t.Errorf("round trip: got %+v, want %+v", *got, want)
		}
	}
}

func TestScannerWalksStream(t *testing.T) {
	var buf []byte
	recs := sampleRecords()
	for _, r := range recs {
		buf = AppendRecord(buf, r)
	}
	// Simulate zero-padded media after the log tail.
	buf = append(buf, make([]byte, 100)...)

	s := NewScanner(buf)
	var types []RecType
	var lsns []LSN
	for s.Next() {
		types = append(types, s.Record().Type)
		lsns = append(lsns, s.LSN())
	}
	if s.Err() != nil {
		t.Fatalf("scan error: %v", s.Err())
	}
	if len(types) != len(recs) {
		t.Fatalf("scanned %d records, want %d", len(types), len(recs))
	}
	for i := 1; i < len(lsns); i++ {
		if lsns[i] <= lsns[i-1] {
			t.Errorf("LSNs not increasing: %v", lsns)
		}
	}
}

func TestScannerDetectsTornTail(t *testing.T) {
	var buf []byte
	buf = AppendRecord(buf, &Record{Type: RecBegin, Txn: 9})
	good := len(buf)
	buf = AppendRecord(buf, &Record{Type: RecInsert, Txn: 9, File: "F", Body: make([]byte, 100)})
	// Tear the second record's body.
	buf[good+40] ^= 0xFF

	s := NewScanner(buf)
	count := 0
	for s.Next() {
		count++
	}
	if count != 1 {
		t.Errorf("scanned %d records before tear, want 1", count)
	}
	if !errors.Is(s.Err(), ErrTornRecord) {
		t.Errorf("Err = %v, want ErrTornRecord", s.Err())
	}
	if s.Offset() != good {
		t.Errorf("Offset = %d, want %d (resume point)", s.Offset(), good)
	}
}

func TestDecodeTruncatedFrame(t *testing.T) {
	buf := AppendRecord(nil, &Record{Type: RecCommit, Txn: 3})
	if _, _, err := DecodeRecord(buf[:len(buf)-2]); !errors.Is(err, ErrTornRecord) {
		t.Errorf("truncated frame: %v, want ErrTornRecord", err)
	}
}

func TestDecodeEmptyAndZeros(t *testing.T) {
	if _, _, err := DecodeRecord(nil); !errors.Is(err, ErrEndOfLog) {
		t.Errorf("nil: %v", err)
	}
	if _, _, err := DecodeRecord(make([]byte, 64)); !errors.Is(err, ErrEndOfLog) {
		t.Errorf("zeros: %v", err)
	}
}

func TestRecTypeString(t *testing.T) {
	if RecCommit.String() != "COMMIT" {
		t.Errorf("RecCommit = %q", RecCommit.String())
	}
	if RecType(99).String() != "RecType(99)" {
		t.Errorf("unknown = %q", RecType(99).String())
	}
}

// Property: any sequence of records survives a full encode/scan cycle
// with order, types and bodies intact.
func TestStreamRoundTripProperty(t *testing.T) {
	type spec struct {
		Type byte
		Txn  uint64
		File string
		Key  uint64
		Body []byte
	}
	prop := func(specs []spec) bool {
		var want []*Record
		var buf []byte
		for _, sp := range specs {
			r := &Record{
				Type: RecType(sp.Type%7 + 1),
				Txn:  TxnID(sp.Txn),
				File: sp.File,
				Key:  sp.Key,
				Body: sp.Body,
			}
			if len(r.File) > 255 {
				r.File = r.File[:255]
			}
			if len(r.Body) > 8192 {
				r.Body = r.Body[:8192]
			}
			want = append(want, r)
			buf = AppendRecord(buf, r)
		}
		s := NewScanner(buf)
		i := 0
		for s.Next() {
			if i >= len(want) {
				return false
			}
			got := s.Record()
			w := want[i]
			if got.Type != w.Type || got.Txn != w.Txn || got.File != w.File ||
				got.Key != w.Key || !bytes.Equal(got.Body, w.Body) {
				return false
			}
			i++
		}
		return s.Err() == nil && i == len(want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
