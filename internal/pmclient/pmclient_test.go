package pmclient

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"persistmem/internal/cluster"
	"persistmem/internal/npmu"
	"persistmem/internal/pmm"
	"persistmem/internal/servernet"
	"persistmem/internal/sim"
)

// harness assembles the paper's deployment: a cluster, a mirrored NPMU
// pair, and a PMM process pair (primary CPU 0, backup CPU 1).
type harness struct {
	eng  *sim.Engine
	cl   *cluster.Cluster
	prim *npmu.Device
	mirr *npmu.Device
	mgr  *pmm.Manager
	vol  *Volume
}

func newHarness(t *testing.T, seed int64) *harness {
	t.Helper()
	eng := sim.NewEngine(seed)
	cfg := cluster.DefaultConfig()
	cfg.CPUs = 5
	cl := cluster.New(eng, cfg)
	prim := npmu.New(cl, "npmu-a", 16<<20)
	mirr := npmu.New(cl, "npmu-b", 16<<20)
	mgr := pmm.Start(cl, "$PM1", 0, 1, prim, mirr)
	return &harness{eng: eng, cl: cl, prim: prim, mirr: mirr, mgr: mgr, vol: Attach(cl, "$PM1")}
}

// runClient executes body as a client process on the given CPU and drives
// the simulation to completion.
func (h *harness) runClient(t *testing.T, cpu int, body func(p *cluster.Process)) {
	t.Helper()
	h.cl.CPU(cpu).Spawn("client", body)
	h.eng.Run()
}

func TestCreateOpenWriteRead(t *testing.T) {
	h := newHarness(t, 1)
	data := []byte("synchronously persistent")
	h.runClient(t, 2, func(p *cluster.Process) {
		if err := h.vol.Create(p, "log0", 1<<20); err != nil {
			t.Fatalf("Create: %v", err)
		}
		r, err := h.vol.Open(p, "log0")
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		if err := r.Write(p, 512, data); err != nil {
			t.Fatalf("Write: %v", err)
		}
		buf := make([]byte, len(data))
		if err := r.Read(p, 512, buf); err != nil {
			t.Fatalf("Read: %v", err)
		}
		if !bytes.Equal(buf, data) {
			t.Errorf("read back %q", buf)
		}
	})
	h.eng.Shutdown()
}

func TestWriteGoesToBothMirrors(t *testing.T) {
	h := newHarness(t, 1)
	h.runClient(t, 2, func(p *cluster.Process) {
		h.vol.Create(p, "r", 1<<20)
		r, _ := h.vol.Open(p, "r")
		if err := r.Write(p, 0, []byte("mirrored")); err != nil {
			t.Fatal(err)
		}
	})
	// The data region starts at MetaBytes on both devices.
	a := make([]byte, 8)
	b := make([]byte, 8)
	h.prim.Store().ReadAt(pmm.MetaBytes, a)
	h.mirr.Store().ReadAt(pmm.MetaBytes, b)
	if string(a) != "mirrored" || string(b) != "mirrored" {
		t.Errorf("primary=%q mirror=%q, want both mirrored", a, b)
	}
	h.eng.Shutdown()
}

func TestWriteLatencyTensOfMicroseconds(t *testing.T) {
	// §3.3: host-initiated memory-semantic access "incurs only 10s of
	// microseconds of latency" — even with both mirrors written.
	h := newHarness(t, 1)
	var took sim.Time
	h.runClient(t, 2, func(p *cluster.Process) {
		h.vol.Create(p, "r", 1<<20)
		r, _ := h.vol.Open(p, "r")
		start := p.Now()
		if err := r.Write(p, 0, make([]byte, 128)); err != nil {
			t.Fatal(err)
		}
		took = p.Now() - start
	})
	if took < 10*sim.Microsecond || took >= 100*sim.Microsecond {
		t.Errorf("mirrored 128B PM write took %v, want tens of microseconds", took)
	}
	h.eng.Shutdown()
}

func TestAccessControlPerCPU(t *testing.T) {
	h := newHarness(t, 1)
	var region *Region
	h.runClient(t, 2, func(p *cluster.Process) {
		h.vol.Create(p, "r", 1<<20)
		var err error
		region, err = h.vol.Open(p, "r")
		if err != nil {
			t.Fatal(err)
		}
	})
	// A process on CPU 3 steals the handle opened by CPU 2: the NIC ATT
	// only admits CPU 2, so the write must be denied.
	h.runClient(t, 3, func(p *cluster.Process) {
		err := region.Write(p, 0, []byte{1})
		if !errors.Is(err, ErrBothMirrorsFailed) {
			t.Errorf("stolen handle write: %v, want ErrBothMirrorsFailed", err)
		}
	})
	h.eng.Shutdown()
}

func TestCloseRevokesAccess(t *testing.T) {
	h := newHarness(t, 1)
	h.runClient(t, 2, func(p *cluster.Process) {
		h.vol.Create(p, "r", 1<<20)
		r, _ := h.vol.Open(p, "r")
		if err := r.Close(p); err != nil {
			t.Fatalf("Close: %v", err)
		}
		if err := r.Write(p, 0, []byte{1}); !errors.Is(err, ErrClosed) {
			t.Errorf("write after close: %v, want ErrClosed", err)
		}
		// Reopening works.
		r2, err := h.vol.Open(p, "r")
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		if err := r2.Write(p, 0, []byte{1}); err != nil {
			t.Errorf("write after reopen: %v", err)
		}
	})
	h.eng.Shutdown()
}

func TestTwoCPUsShareRegion(t *testing.T) {
	h := newHarness(t, 1)
	h.runClient(t, 2, func(p *cluster.Process) {
		h.vol.Create(p, "shared", 1<<20)
		r, _ := h.vol.Open(p, "shared")
		r.Write(p, 0, []byte("from-cpu2"))
	})
	h.runClient(t, 3, func(p *cluster.Process) {
		r, err := h.vol.Open(p, "shared")
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 9)
		if err := r.Read(p, 0, buf); err != nil {
			t.Fatal(err)
		}
		if string(buf) != "from-cpu2" {
			t.Errorf("cross-CPU read = %q", buf)
		}
	})
	h.eng.Shutdown()
}

func TestDuplicateCreate(t *testing.T) {
	h := newHarness(t, 1)
	h.runClient(t, 2, func(p *cluster.Process) {
		h.vol.Create(p, "r", 4096)
		if err := h.vol.Create(p, "r", 4096); !errors.Is(err, pmm.ErrExists) {
			t.Errorf("duplicate create: %v, want ErrExists", err)
		}
	})
	h.eng.Shutdown()
}

func TestDeleteSemantics(t *testing.T) {
	h := newHarness(t, 1)
	h.runClient(t, 2, func(p *cluster.Process) {
		h.vol.Create(p, "r", 4096)
		r, _ := h.vol.Open(p, "r")
		if err := h.vol.Delete(p, "r"); !errors.Is(err, pmm.ErrBusy) {
			t.Errorf("delete open region: %v, want ErrBusy", err)
		}
		r.Close(p)
		if err := h.vol.Delete(p, "r"); err != nil {
			t.Errorf("delete closed region: %v", err)
		}
		if err := h.vol.Delete(p, "r"); !errors.Is(err, pmm.ErrNotFound) {
			t.Errorf("delete again: %v, want ErrNotFound", err)
		}
		if _, err := h.vol.Open(p, "r"); !errors.Is(err, pmm.ErrNotFound) {
			t.Errorf("open deleted: %v, want ErrNotFound", err)
		}
	})
	h.eng.Shutdown()
}

func TestList(t *testing.T) {
	h := newHarness(t, 1)
	h.runClient(t, 2, func(p *cluster.Process) {
		h.vol.Create(p, "a", 4096)
		h.vol.Create(p, "b", 8192)
		regions, err := h.vol.List(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(regions) != 2 {
			t.Fatalf("List returned %d regions", len(regions))
		}
		if regions[0].Name != "a" || regions[1].Name != "b" {
			t.Errorf("regions = %v", regions)
		}
		if regions[0].Owner != "client" {
			t.Errorf("owner = %q, want client", regions[0].Owner)
		}
	})
	h.eng.Shutdown()
}

func TestVolumeFull(t *testing.T) {
	h := newHarness(t, 1)
	h.runClient(t, 2, func(p *cluster.Process) {
		if err := h.vol.Create(p, "big", 64<<20); err == nil {
			t.Error("oversized create succeeded")
		}
	})
	h.eng.Shutdown()
}

func TestOutOfRangeAccess(t *testing.T) {
	h := newHarness(t, 1)
	h.runClient(t, 2, func(p *cluster.Process) {
		h.vol.Create(p, "r", 4096)
		r, _ := h.vol.Open(p, "r")
		if err := r.Write(p, 4000, make([]byte, 200)); !errors.Is(err, ErrOutOfRange) {
			t.Errorf("overflow write: %v, want ErrOutOfRange", err)
		}
		if err := r.Read(p, -1, make([]byte, 1)); !errors.Is(err, ErrOutOfRange) {
			t.Errorf("negative read: %v, want ErrOutOfRange", err)
		}
	})
	h.eng.Shutdown()
}

func TestMirrorFailureDegradedWrite(t *testing.T) {
	h := newHarness(t, 1)
	h.runClient(t, 2, func(p *cluster.Process) {
		h.vol.Create(p, "r", 1<<20)
		r, _ := h.vol.Open(p, "r")
		h.mirr.Fail()
		if err := r.Write(p, 0, []byte("survives")); err != nil {
			t.Fatalf("degraded write: %v", err)
		}
		if r.DegradedWrites != 1 {
			t.Errorf("DegradedWrites = %d, want 1", r.DegradedWrites)
		}
		buf := make([]byte, 8)
		if err := r.Read(p, 0, buf); err != nil || string(buf) != "survives" {
			t.Errorf("read after mirror loss: %q, %v", buf, err)
		}
	})
	h.eng.Shutdown()
}

func TestPrimaryFailureReadFallsOver(t *testing.T) {
	h := newHarness(t, 1)
	h.runClient(t, 2, func(p *cluster.Process) {
		h.vol.Create(p, "r", 1<<20)
		r, _ := h.vol.Open(p, "r")
		r.Write(p, 0, []byte("mirrored"))
		h.prim.Fail()
		buf := make([]byte, 8)
		if err := r.Read(p, 0, buf); err != nil {
			t.Fatalf("read with primary down: %v", err)
		}
		if string(buf) != "mirrored" {
			t.Errorf("mirror read = %q", buf)
		}
		if r.PrimaryReadFailures != 1 {
			t.Errorf("PrimaryReadFailures = %d, want 1", r.PrimaryReadFailures)
		}
	})
	h.eng.Shutdown()
}

func TestBothMirrorsFailed(t *testing.T) {
	h := newHarness(t, 1)
	h.runClient(t, 2, func(p *cluster.Process) {
		h.vol.Create(p, "r", 1<<20)
		r, _ := h.vol.Open(p, "r")
		h.prim.Fail()
		h.mirr.Fail()
		if err := r.Write(p, 0, []byte{1}); !errors.Is(err, ErrBothMirrorsFailed) {
			t.Errorf("write with both down: %v, want ErrBothMirrorsFailed", err)
		}
	})
	h.eng.Shutdown()
}

func TestClientIOContinuesDuringPMMTakeover(t *testing.T) {
	// §4.1's separation property: the data path is one-sided RDMA to the
	// devices, so killing the PMM's CPU must not disturb in-progress
	// region I/O — only management operations wait for the takeover.
	h := newHarness(t, 1)
	h.runClient(t, 2, func(p *cluster.Process) {
		h.vol.Create(p, "r", 1<<20)
		r, _ := h.vol.Open(p, "r")
		h.cl.CPU(0).Fail() // PMM primary dies
		// Immediate I/O, long before the takeover completes:
		if err := r.Write(p, 0, []byte("still here")); err != nil {
			t.Fatalf("write during PMM outage: %v", err)
		}
		buf := make([]byte, 10)
		if err := r.Read(p, 0, buf); err != nil || string(buf) != "still here" {
			t.Fatalf("read during PMM outage: %q, %v", buf, err)
		}
		// Management resumes after takeover (retry until the backup has
		// re-registered the service name).
		deadline := p.Now() + 5*sim.Second
		for {
			if err := h.vol.Create(p, "post-takeover", 4096); err == nil {
				break
			}
			if p.Now() > deadline {
				t.Fatal("management never resumed after takeover")
			}
			p.Wait(100 * sim.Millisecond)
		}
	})
	if h.mgr.Pair().Takeovers != 1 {
		t.Errorf("Takeovers = %d, want 1", h.mgr.Pair().Takeovers)
	}
	h.eng.Shutdown()
}

func TestPowerLossRecovery(t *testing.T) {
	// Full power cycle: region table must be rebuilt from durable NPMU
	// metadata and hardware NPMU data must be readable afterwards.
	h := newHarness(t, 1)
	h.runClient(t, 2, func(p *cluster.Process) {
		h.vol.Create(p, "persistent-r", 1<<20)
		r, _ := h.vol.Open(p, "persistent-r")
		r.Write(p, 100, []byte("over the cliff"))
	})

	// Lights out.
	h.cl.PowerFail()
	h.prim.PowerFail()
	h.mirr.PowerFail()
	h.eng.Run() // drain the chaos

	// Reboot: power up devices and CPUs, start a fresh PMM pair.
	h.prim.Restore()
	h.mirr.Restore()
	h.cl.RestorePower()
	mgr2 := pmm.Start(h.cl, "$PM1", 0, 1, h.prim, h.mirr)
	vol2 := Attach(h.cl, "$PM1")

	h.runClient(t, 2, func(p *cluster.Process) {
		regions, err := vol2.List(p)
		if err != nil {
			t.Fatalf("List after reboot: %v", err)
		}
		if len(regions) != 1 || regions[0].Name != "persistent-r" {
			t.Fatalf("recovered regions = %v", regions)
		}
		r, err := vol2.Open(p, "persistent-r")
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		buf := make([]byte, 14)
		if err := r.Read(p, 100, buf); err != nil {
			t.Fatalf("read recovered data: %v", err)
		}
		if string(buf) != "over the cliff" {
			t.Errorf("recovered data = %q", buf)
		}
	})
	if mgr2.Recoveries != 1 {
		t.Errorf("Recoveries = %d, want 1", mgr2.Recoveries)
	}
	h.eng.Shutdown()
}

func TestPMPLosesDataAcrossPowerLoss(t *testing.T) {
	// The same reboot flow with PMP prototype devices: the volume formats
	// fresh because the paper's prototype was volatile.
	eng := sim.NewEngine(1)
	cfg := cluster.DefaultConfig()
	cfg.CPUs = 5
	cl := cluster.New(eng, cfg)
	prim := npmu.NewPMP(cl, "pmp-a", 16<<20)
	mirr := npmu.NewPMP(cl, "pmp-b", 16<<20)
	pmm.Start(cl, "$PM1", 0, 1, prim, mirr)
	vol := Attach(cl, "$PM1")
	cl.CPU(2).Spawn("client", func(p *cluster.Process) {
		vol.Create(p, "r", 1<<20)
		r, _ := vol.Open(p, "r")
		r.Write(p, 0, []byte("gone"))
	})
	eng.Run()

	cl.PowerFail()
	prim.PowerFail()
	mirr.PowerFail()
	eng.Run()
	prim.Restore()
	mirr.Restore()
	cl.RestorePower()
	pmm.Start(cl, "$PM1", 0, 1, prim, mirr)
	vol2 := Attach(cl, "$PM1")
	cl.CPU(2).Spawn("client", func(p *cluster.Process) {
		regions, err := vol2.List(p)
		if err != nil {
			t.Fatalf("List: %v", err)
		}
		if len(regions) != 0 {
			t.Errorf("PMP volume recovered %d regions, want 0 (volatile)", len(regions))
		}
	})
	eng.Run()
	eng.Shutdown()
}

func TestTornMetadataWriteRecoversOlderSlot(t *testing.T) {
	// Corrupt the newest metadata slot (as a crash mid-write would) on
	// both devices; recovery must fall back to the older generation.
	h := newHarness(t, 1)
	h.runClient(t, 2, func(p *cluster.Process) {
		h.vol.Create(p, "a", 4096) // gen 2 (gen 1 = format)
		h.vol.Create(p, "b", 4096) // gen 3
	})
	// Gen 3 lives in slot 1. Tear it on both devices.
	for _, dev := range []*npmu.Device{h.prim, h.mirr} {
		dev.Store().WriteAt(pmm.MetaSlotBytes+10, []byte{0xDE, 0xAD})
	}
	h.cl.PowerFail()
	h.prim.PowerFail()
	h.mirr.PowerFail()
	h.eng.Run()
	h.prim.Restore()
	h.mirr.Restore()
	h.cl.RestorePower()
	pmm.Start(h.cl, "$PM1", 0, 1, h.prim, h.mirr)
	vol2 := Attach(h.cl, "$PM1")
	h.runClient(t, 2, func(p *cluster.Process) {
		regions, err := vol2.List(p)
		if err != nil {
			t.Fatalf("List: %v", err)
		}
		// Gen 2 state: only region "a".
		if len(regions) != 1 || regions[0].Name != "a" {
			t.Errorf("recovered regions = %v, want just [a]", regions)
		}
	})
	h.eng.Shutdown()
}

func TestCRCRetry(t *testing.T) {
	// With a moderate injected CRC error rate, the client's retry makes
	// writes succeed anyway.
	eng := sim.NewEngine(99)
	cfg := cluster.DefaultConfig()
	cfg.CPUs = 5
	cfg.Net.CRCErrorRate = 0.2
	cl := cluster.New(eng, cfg)
	prim := npmu.New(cl, "a", 16<<20)
	mirr := npmu.New(cl, "b", 16<<20)
	pmm.Start(cl, "$PM1", 0, 1, prim, mirr)
	vol := Attach(cl, "$PM1")
	cl.CPU(2).Spawn("client", func(p *cluster.Process) {
		// Management ops can also fail on CRC; retry them.
		for vol.Create(p, "r", 1<<20) != nil {
			p.Wait(sim.Millisecond)
		}
		var r *Region
		for {
			var err error
			if r, err = vol.Open(p, "r"); err == nil {
				break
			}
			p.Wait(sim.Millisecond)
		}
		okWrites := 0
		for i := 0; i < 50; i++ {
			if err := r.Write(p, int64(i)*64, make([]byte, 64)); err == nil {
				okWrites++
			}
		}
		if okWrites < 45 {
			t.Errorf("only %d/50 writes succeeded despite CRC retry", okWrites)
		}
		if r.RetriedTransfers == 0 {
			t.Error("no transfers were retried at 20%% CRC error rate")
		}
	})
	eng.Run()
	eng.Shutdown()
}

func TestResilverRestoresRedundancy(t *testing.T) {
	// Lose the mirror, keep writing (degraded), replace the device, ask
	// the PMM to resilver, then lose the PRIMARY: reads must now be
	// served correctly from the repaired mirror.
	h := newHarness(t, 1)
	h.runClient(t, 2, func(p *cluster.Process) {
		h.vol.Create(p, "r", 1<<20)
		r, _ := h.vol.Open(p, "r")
		r.Write(p, 0, []byte("before-failure"))

		h.mirr.PowerFail() // mirror dies (loses nothing; NVM) and its ATT
		if err := r.Write(p, 100, []byte("degraded-write")); err != nil {
			t.Fatalf("degraded write: %v", err)
		}

		h.mirr.Restore() // device replaced/returned, contents stale
		copied, err := h.vol.Resilver(p)
		if err != nil {
			t.Fatalf("resilver: %v", err)
		}
		if copied == 0 {
			t.Fatal("resilver copied nothing")
		}

		// Now the primary dies; the repaired mirror must carry everything,
		// including the write made while degraded.
		h.prim.Fail()
		buf := make([]byte, 14)
		if err := r.Read(p, 0, buf); err != nil || string(buf) != "before-failure" {
			t.Errorf("mirror read 1 = %q, %v", buf, err)
		}
		if err := r.Read(p, 100, buf); err != nil || string(buf) != "degraded-write" {
			t.Errorf("mirror read 2 = %q, %v", buf, err)
		}
	})
	if h.mgr.Resilvers != 1 {
		t.Errorf("Resilvers = %d, want 1", h.mgr.Resilvers)
	}
	h.eng.Shutdown()
}

func TestResilverWithBothDevicesUpIsHarmless(t *testing.T) {
	h := newHarness(t, 1)
	h.runClient(t, 2, func(p *cluster.Process) {
		h.vol.Create(p, "r", 64<<10)
		r, _ := h.vol.Open(p, "r")
		r.Write(p, 0, []byte("steady"))
		if _, err := h.vol.Resilver(p); err != nil {
			t.Fatalf("resilver on healthy volume: %v", err)
		}
		buf := make([]byte, 6)
		if err := r.Read(p, 0, buf); err != nil || string(buf) != "steady" {
			t.Errorf("read after no-op resilver: %q, %v", buf, err)
		}
	})
	h.eng.Shutdown()
}

// Property: under random create/delete sequences, the PMM's region table
// never contains overlapping extents and all extents respect the metadata
// reservation.
func TestRegionAllocationNoOverlapProperty(t *testing.T) {
	type op struct {
		Name uint8
		Size uint16
		Del  bool
	}
	prop := func(ops []op) bool {
		if len(ops) > 24 {
			ops = ops[:24]
		}
		h := newHarness(t, 3)
		ok := true
		h.runClient(t, 2, func(p *cluster.Process) {
			for _, o := range ops {
				name := fmt.Sprintf("r%d", o.Name%8)
				if o.Del {
					h.vol.Delete(p, name)
					continue
				}
				size := int64(o.Size)%(1<<20) + 512
				h.vol.Create(p, name, size)
			}
			regions, err := h.vol.List(p)
			if err != nil {
				ok = false
				return
			}
			for i, r := range regions {
				if r.Offset < pmm.MetaBytes {
					ok = false
					return
				}
				if i > 0 {
					prev := regions[i-1]
					if prev.Offset+prev.Size > r.Offset {
						ok = false
						return
					}
				}
			}
		})
		h.eng.Shutdown()
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestManyRegionsLifecycle(t *testing.T) {
	h := newHarness(t, 1)
	h.runClient(t, 2, func(p *cluster.Process) {
		// Fill with many small regions, write a signature into each,
		// verify all, then delete every other one and recreate larger.
		const n = 40
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("seg%02d", i)
			if err := h.vol.Create(p, name, 64<<10); err != nil {
				t.Fatalf("create %s: %v", name, err)
			}
			r, err := h.vol.Open(p, name)
			if err != nil {
				t.Fatalf("open %s: %v", name, err)
			}
			if err := r.Write(p, 0, []byte{byte(i + 1)}); err != nil {
				t.Fatalf("write %s: %v", name, err)
			}
			r.Close(p)
		}
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("seg%02d", i)
			r, err := h.vol.Open(p, name)
			if err != nil {
				t.Fatalf("reopen %s: %v", name, err)
			}
			var b [1]byte
			r.Read(p, 0, b[:])
			if b[0] != byte(i+1) {
				t.Errorf("%s signature = %d, want %d", name, b[0], i+1)
			}
			r.Close(p)
		}
		for i := 0; i < n; i += 2 {
			if err := h.vol.Delete(p, fmt.Sprintf("seg%02d", i)); err != nil {
				t.Fatalf("delete: %v", err)
			}
		}
		// Survivors intact after the churn.
		for i := 1; i < n; i += 2 {
			name := fmt.Sprintf("seg%02d", i)
			r, err := h.vol.Open(p, name)
			if err != nil {
				t.Fatalf("post-churn open %s: %v", name, err)
			}
			var b [1]byte
			r.Read(p, 0, b[:])
			if b[0] != byte(i+1) {
				t.Errorf("%s corrupted by neighbor churn", name)
			}
			r.Close(p)
		}
	})
	h.eng.Shutdown()
}

func TestServernetPermZeroValueDenies(t *testing.T) {
	// Guard: the zero Perm must deny everything (defense in depth for
	// PMM programming bugs).
	eng := sim.NewEngine(1)
	fab := servernet.New(eng, servernet.DefaultConfig())
	fab.Attach(1, "a")
	ep := fab.Attach(2, "b")
	ep.MapWindow(0, 4096, servernet.ByteWindow(make([]byte, 4096)), 0, servernet.Perm{})
	eng.Spawn("c", func(p *sim.Proc) {
		if err := fab.RDMAWrite(p, 1, 2, 0, []byte{1}); !errors.Is(err, servernet.ErrAccessDenied) {
			t.Errorf("zero-perm write: %v", err)
		}
		if err := fab.RDMARead(p, 1, 2, 0, []byte{0}); !errors.Is(err, servernet.ErrAccessDenied) {
			t.Errorf("zero-perm read: %v", err)
		}
	})
	eng.Run()
	eng.Shutdown()
}
