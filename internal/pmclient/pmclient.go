// Package pmclient is the client-side persistent memory access library of
// §4.1: processes attach to a PM volume, ask the PMM to create and open
// regions, and then perform synchronous RDMA reads and writes directly
// against the NPMU devices — no PMM involvement on the data path.
//
// Write semantics follow the paper exactly: "the API writes data to both
// the primary and mirror NPMUs; reads need not be replicated", and "when
// the call returns the data is either persistent or the call will return
// in error."
package pmclient

import (
	"errors"
	"fmt"

	"persistmem/internal/cluster"
	"persistmem/internal/metrics"
	"persistmem/internal/pmm"
	"persistmem/internal/servernet"
)

// Client-side errors.
var (
	// ErrOutOfRange means an access fell outside the region bounds.
	ErrOutOfRange = errors.New("pmclient: access out of region bounds")
	// ErrClosed means the region handle has been closed.
	ErrClosed = errors.New("pmclient: region closed")
	// ErrBothMirrorsFailed means neither NPMU of the volume accepted the
	// operation; data may not be persistent.
	ErrBothMirrorsFailed = errors.New("pmclient: both mirrors failed")
)

// crcRetries is how many times an operation is retried per device after a
// CRC-failed (unacknowledged) transfer before giving up.
const crcRetries = 2

// Volume is a client handle to a PM volume, identified by its PMM service
// name.
type Volume struct {
	cl      *cluster.Cluster
	pmmName string
}

// Attach binds a handle to the PM volume managed by the named PMM.
func Attach(cl *cluster.Cluster, pmmName string) *Volume {
	return &Volume{cl: cl, pmmName: pmmName}
}

// call sends a management request to the PMM.
func (v *Volume) call(p *cluster.Process, sz int, req interface{}) (pmm.Resp, error) {
	raw, err := p.Call(v.pmmName, sz, req)
	if err != nil {
		return pmm.Resp{}, fmt.Errorf("pmclient: PMM call failed: %w", err)
	}
	resp := raw.(pmm.Resp)
	if resp.Err != nil {
		return resp, resp.Err
	}
	return resp, nil
}

// Create makes a new region of the given size. It does not open it.
func (v *Volume) Create(p *cluster.Process, name string, size int64) error {
	_, err := v.call(p, 96+len(name), pmm.CreateReq{Name: name, Size: size, Owner: p.Name()})
	return err
}

// Open requests access to a region for the calling process's CPU and
// returns a handle for direct RDMA access.
func (v *Volume) Open(p *cluster.Process, name string) (*Region, error) {
	resp, err := v.call(p, 64+len(name), pmm.OpenReq{Name: name, ClientCPU: p.CPU().Index()})
	if err != nil {
		return nil, err
	}
	return &Region{vol: v, info: resp.Info, cpu: p.CPU().Index()}, nil
}

// Delete removes a region that is not open anywhere.
func (v *Volume) Delete(p *cluster.Process, name string) error {
	_, err := v.call(p, 64+len(name), pmm.DeleteReq{Name: name})
	return err
}

// Resilver asks the PMM to rebuild the mirror after a device was
// replaced or returned from failure, returning the bytes copied. (The
// repair is synchronous within the cluster call timeout; very large
// volumes would be repaired in an operations window, not inline.)
func (v *Volume) Resilver(p *cluster.Process) (int64, error) {
	raw, err := p.Call(v.pmmName, 48, pmm.ResilverReq{})
	if err != nil {
		return 0, fmt.Errorf("pmclient: resilver call failed: %w", err)
	}
	resp := raw.(pmm.ResilverResp)
	return resp.BytesCopied, resp.Err
}

// List returns the volume's region table.
func (v *Volume) List(p *cluster.Process) ([]pmm.RegionMeta, error) {
	resp, err := v.call(p, 64, pmm.ListReq{})
	if err != nil {
		return nil, err
	}
	return resp.Regions, nil
}

// Region is an open region handle. Operations are synchronous: they
// return once the data is persistent (in at least one NPMU, normally
// both) or with an error.
type Region struct {
	vol    *Volume
	info   pmm.RegionInfo
	cpu    int
	closed bool

	// Stats observable by benchmarks.
	Writes, Reads       int64
	BytesWritten        int64
	BytesRead           int64
	DegradedWrites      int64 // writes that reached only one mirror
	RetriedTransfers    int64 // CRC-failed transfers that were retried
	PrimaryReadFailures int64 // reads that fell over to the mirror

	// Instrument pointers, nil when unmetered (Record/Inc/Add nil-short-
	// circuit).
	mWrite  *metrics.LatencyHist
	mWrites *metrics.Counter
	mBytes  *metrics.Counter
}

// SetMetrics attaches PM write-span instruments to this region handle
// (nil detaches).
func (r *Region) SetMetrics(pm *metrics.PMSpans) {
	if pm == nil {
		r.mWrite, r.mWrites, r.mBytes = nil, nil, nil
		return
	}
	r.mWrite, r.mWrites, r.mBytes = pm.Write, pm.Writes, pm.Bytes
}

// Info returns the region's access description.
func (r *Region) Info() pmm.RegionInfo { return r.info }

// Size returns the region size in bytes.
func (r *Region) Size() int64 { return r.info.Size }

// Name returns the region name.
func (r *Region) Name() string { return r.info.Name }

//simlint:hotpath
func (r *Region) check(off int64, n int) error {
	if r.closed {
		return ErrClosed
	}
	if off < 0 || off+int64(n) > r.info.Size {
		//simlint:allow hotalloc -- caller-bug path, cold by construction
		return fmt.Errorf("%w: off=%d len=%d size=%d", ErrOutOfRange, off, n, r.info.Size)
	}
	return nil
}

// writeOne performs the RDMA write to a single device with CRC retry.
//
//simlint:hotpath
func (r *Region) writeOne(p *cluster.Process, dev servernet.EndpointID, off int64, data []byte) error {
	fab := p.CPU().Fabric()
	from := p.CPU().Endpoint().ID()
	nva := r.info.Base + uint32(off)
	var err error
	for attempt := 0; attempt <= crcRetries; attempt++ {
		err = fab.RDMAWrite(p.Sim(), from, dev, nva, data)
		if !errors.Is(err, servernet.ErrCRC) {
			return err
		}
		r.RetriedTransfers++
	}
	return err
}

// Write synchronously persists data at byte offset off within the region,
// writing both mirrors. It succeeds if at least one mirror accepted the
// data (the volume is then degraded until the PMM repairs it); it fails
// with ErrBothMirrorsFailed if neither did.
//
//simlint:hotpath
func (r *Region) Write(p *cluster.Process, off int64, data []byte) error {
	if err := r.check(off, len(data)); err != nil {
		return err
	}
	wstart := p.Now()
	errPrim := r.writeOne(p, r.info.Primary, off, data)
	errMirr := errPrim
	if r.info.Mirror != r.info.Primary {
		errMirr = r.writeOne(p, r.info.Mirror, off, data)
	}
	switch {
	case errPrim == nil && errMirr == nil:
	case errPrim == nil || errMirr == nil:
		r.DegradedWrites++
	default:
		//simlint:allow hotalloc -- double-mirror-failure path, cold by construction
		return fmt.Errorf("%w: primary: %v; mirror: %v", ErrBothMirrorsFailed, errPrim, errMirr)
	}
	r.Writes++
	r.BytesWritten += int64(len(data))
	r.mWrite.Record(p.Now() - wstart)
	r.mWrites.Inc()
	r.mBytes.Add(int64(len(data)))
	return nil
}

// Read fills buf from byte offset off. It reads the primary and falls
// over to the mirror on failure ("reads need not be replicated").
//
//simlint:hotpath
func (r *Region) Read(p *cluster.Process, off int64, buf []byte) error {
	if err := r.check(off, len(buf)); err != nil {
		return err
	}
	fab := p.CPU().Fabric()
	from := p.CPU().Endpoint().ID()
	nva := r.info.Base + uint32(off)
	err := fab.RDMARead(p.Sim(), from, r.info.Primary, nva, buf)
	if err != nil {
		r.PrimaryReadFailures++
		err = fab.RDMARead(p.Sim(), from, r.info.Mirror, nva, buf)
	}
	if err != nil {
		return err
	}
	r.Reads++
	r.BytesRead += int64(len(buf))
	return nil
}

// Replicas returns the number of distinct devices backing the region: 2
// for a mirrored volume, 1 for the unmirrored ablation.
func (r *Region) Replicas() int {
	if r.info.Mirror == r.info.Primary {
		return 1
	}
	return 2
}

// ReadReplica fills buf from one specific device of the mirrored pair
// (0 = primary, 1 = mirror), with no failover. Recovery code uses it to
// compare replica contents after a degraded period — a device that sat
// out a power failure holds only a stale prefix of its log region, and
// the normal Read's primary-first policy would hand that prefix to the
// scanner as if it were the whole trail.
func (r *Region) ReadReplica(p *cluster.Process, replica int, off int64, buf []byte) error {
	if replica < 0 || replica >= r.Replicas() {
		return fmt.Errorf("%w: replica %d of %d", ErrOutOfRange, replica, r.Replicas())
	}
	if err := r.check(off, len(buf)); err != nil {
		return err
	}
	dev := r.info.Primary
	if replica == 1 {
		dev = r.info.Mirror
	}
	fab := p.CPU().Fabric()
	from := p.CPU().Endpoint().ID()
	nva := r.info.Base + uint32(off)
	if err := fab.RDMARead(p.Sim(), from, dev, nva, buf); err != nil {
		return err
	}
	r.Reads++
	r.BytesRead += int64(len(buf))
	return nil
}

// Close revokes this handle's access with the PMM.
func (r *Region) Close(p *cluster.Process) error {
	if r.closed {
		return ErrClosed
	}
	r.closed = true
	_, err := r.vol.call(p, 64, pmm.CloseReq{Name: r.info.Name, ClientCPU: r.cpu})
	return err
}
