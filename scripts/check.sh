#!/bin/sh
# check.sh — the repository's pre-commit gate: build, vet, simlint (the
# determinism & hot-path suite in cmd/simlint), the full test suite, and
# the race detector over every package.
#
# govulncheck runs when installed (CI installs it; it is optional locally
# so the gate works offline).
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go run ./cmd/simlint ./...
# The main test pass doubles as the coverage gate: covcheck fails when
# any package drops below its committed per-package floor (COVERAGE.json;
# re-baseline deliberately with `go run ./cmd/covcheck -update`).
go test -coverprofile=/tmp/persistmem-cover.out ./...
go run ./cmd/covcheck -profile /tmp/persistmem-cover.out
rm -f /tmp/persistmem-cover.out
go test -race ./...

# Kernel perf gate: re-measure scheduler ns/event and data-plane
# allocs/txn and fail on >20% regression against the committed baseline.
go run ./cmd/simbench -compare BENCH_kernel.json

# Fault-injection smoke matrix: every (durability x fault x phase) cell
# must pass its invariants, and the whole sweep must be deterministic —
# two same-seed runs (one sequential) print byte-identical tables.
go run ./cmd/faults -txns 8 -chaos 1 > /tmp/faults-a.txt
go run ./cmd/faults -txns 8 -chaos 1 -parallel 1 > /tmp/faults-b.txt
cmp /tmp/faults-a.txt /tmp/faults-b.txt
rm -f /tmp/faults-a.txt /tmp/faults-b.txt

if command -v govulncheck >/dev/null 2>&1; then
	govulncheck ./...
fi
