#!/bin/sh
# check.sh — the repository's pre-commit gate: build, vet, the full test
# suite, and the race detector over the two packages that execute
# concurrently for real (the experiment worker pool and the simulation
# kernel it drives).
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test ./...
go test -race ./internal/bench/ ./internal/sim/
