#!/bin/sh
# check.sh — the repository's pre-commit gate: build, vet, simlint (the
# determinism & hot-path suite in cmd/simlint), the full test suite, and
# the race detector over every package.
#
# govulncheck runs when installed (CI installs it; it is optional locally
# so the gate works offline).
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
# simlint (determinism, hot-path, box-lifecycle and LP-boundary suite).
# The committed baseline is empty: the tree carries zero findings, only
# reviewed //simlint:allow suppressions. The JSON report is left behind on
# failure so CI can upload it as an artifact.
go run ./cmd/simlint -json ./... > simlint.json || true
echo '[]' | diff - simlint.json
rm -f simlint.json
# The main test pass doubles as the coverage gate: covcheck fails when
# any package drops below its committed per-package floor (COVERAGE.json;
# re-baseline deliberately with `go run ./cmd/covcheck -update`).
go test -coverprofile=/tmp/persistmem-cover.out ./...
go run ./cmd/covcheck -profile /tmp/persistmem-cover.out
rm -f /tmp/persistmem-cover.out
# The bench package's sweep differentials run ~9 minutes under the race
# detector on one core; give the race pass explicit headroom over the
# 10-minute per-package default.
go test -race -timeout 20m ./...

# Kernel perf gate: re-measure scheduler ns/event and data-plane
# allocs/txn and fail on >20% regression against the committed baseline.
go run ./cmd/simbench -compare BENCH_kernel.json

# Parallel-engine differential gates: the conservative LP cluster must
# produce byte-identical schedules at any worker count, verified under
# the race detector with GOMAXPROCS>1 so the worker goroutines genuinely
# interleave.
GOMAXPROCS=4 go test -race -count=1 ./internal/sim/parallel
GOMAXPROCS=4 go test -race -count=1 -run 'EngineDifferential' ./internal/bench

# Intra-run partitioning differential gates: one store split across 1, 2
# and 4 node-LPs must execute byte-identical schedules, verified under
# the race detector with the LP workers genuinely concurrent.
GOMAXPROCS=4 go test -race -count=1 -run 'PartitionInvariance' \
	./internal/ods ./internal/loadgen ./internal/bench

# Partitioned figure gate: a full-scale Figure 1 cell run as one
# partitioned simulation prints byte-identical CSV at 1, 2 and 4
# node-LPs (smoke seeds 1-3 first, then the full-scale acceptance cell).
for seed in 1 2 3; do
	go run ./cmd/figures -fig 1cell -scale smoke -seed "$seed" -node-lps 1 > /tmp/cell-a.csv
	go run ./cmd/figures -fig 1cell -scale smoke -seed "$seed" -node-lps 2 > /tmp/cell-b.csv
	cmp /tmp/cell-a.csv /tmp/cell-b.csv
	go run ./cmd/figures -fig 1cell -scale smoke -seed "$seed" -node-lps 4 > /tmp/cell-c.csv
	cmp /tmp/cell-a.csv /tmp/cell-c.csv
done
go run ./cmd/figures -fig 1cell -scale full -seed 1 -node-lps 1 > /tmp/cell-a.csv
go run ./cmd/figures -fig 1cell -scale full -seed 1 -node-lps 2 > /tmp/cell-b.csv
cmp /tmp/cell-a.csv /tmp/cell-b.csv
go run ./cmd/figures -fig 1cell -scale full -seed 1 -node-lps 4 > /tmp/cell-c.csv
cmp /tmp/cell-a.csv /tmp/cell-c.csv
rm -f /tmp/cell-a.csv /tmp/cell-b.csv /tmp/cell-c.csv

# Partitioned fault demo: the volume-fault scenario must print the same
# transcript at every partition count.
go run ./cmd/faults -node-lps 1 > /tmp/pfault-a.txt
go run ./cmd/faults -node-lps 2 > /tmp/pfault-b.txt
cmp /tmp/pfault-a.txt /tmp/pfault-b.txt
go run ./cmd/faults -node-lps 4 > /tmp/pfault-c.txt
cmp /tmp/pfault-a.txt /tmp/pfault-c.txt
rm -f /tmp/pfault-a.txt /tmp/pfault-b.txt /tmp/pfault-c.txt

# Fault-injection smoke matrix: every (durability x fault x phase) cell
# must pass its invariants — the history-based atomicity/serializability
# checker runs inside every cell, and the -violations artifact must come
# out empty — and the whole sweep must be deterministic: three same-seed
# runs (default pool, sequential, and the parallel LP engine) print
# byte-identical tables. The cell-count grep pins the matrix size so the
# cross-shard cells (coordinator/participant kills inside the prepare,
# in-doubt, post-outcome and apply windows) cannot silently drop out.
go run ./cmd/faults -txns 8 -chaos 1 -violations /tmp/faults-viol.txt > /tmp/faults-a.txt
test ! -s /tmp/faults-viol.txt
grep -q '64/64 cells passed' /tmp/faults-a.txt
grep -c 'xs-coord' /tmp/faults-a.txt | grep -qx 9
grep -c 'xs-part' /tmp/faults-a.txt | grep -qx 6
go run ./cmd/faults -txns 8 -chaos 1 -parallel 1 > /tmp/faults-b.txt
cmp /tmp/faults-a.txt /tmp/faults-b.txt
go run ./cmd/faults -txns 8 -chaos 1 -engine parallel > /tmp/faults-c.txt
cmp /tmp/faults-a.txt /tmp/faults-c.txt
rm -f /tmp/faults-a.txt /tmp/faults-b.txt /tmp/faults-c.txt /tmp/faults-viol.txt

# Figure-artifact staleness gate: regenerate every table at quick scale
# and compare its format skeleton (numbers, durations and the scale name
# masked out) against the committed full-scale summary. A mismatch means
# a table changed shape since figures_full.txt was generated — rerun
# cmd/figures at -scale full and commit the refreshed artifacts.
go run ./cmd/figures -fig all -scale quick -seed 1 > /tmp/figures-quick.txt
skel() {
	sed -E -e 's/scale=[a-z]+/scale=S/' -e 's/[0-9]+(\.[0-9]+)?(ns|us|µs|ms|m?s)?/N/g' \
		-e 's/  +/ /g' -e 's/ +$//' "$1"
}
skel figures_full.txt > /tmp/figures-skel-full.txt
skel /tmp/figures-quick.txt > /tmp/figures-skel-quick.txt
cmp /tmp/figures-skel-full.txt /tmp/figures-skel-quick.txt
rm -f /tmp/figures-quick.txt /tmp/figures-skel-full.txt /tmp/figures-skel-quick.txt

# Open-loop saturation sweep: the smoke-scale sweep must pass its shape
# checks (knee present per durability, p99 strictly rising past it,
# monotone shard/volume scaling) and print byte-identical CSV at any
# parallelism and on the parallel LP engine — the same determinism
# contract the committed saturation_full.csv was generated under. The
# summary-table skeleton doubles as the staleness gate for the committed
# full-scale artifact, like the figure tables above.
go run ./cmd/loadgen -scale smoke -seed 1 -check -csv > /tmp/sat-a.csv
go run ./cmd/loadgen -scale smoke -seed 1 -csv -parallel 1 > /tmp/sat-b.csv
cmp /tmp/sat-a.csv /tmp/sat-b.csv
go run ./cmd/loadgen -scale smoke -seed 1 -csv -engine parallel > /tmp/sat-c.csv
cmp /tmp/sat-a.csv /tmp/sat-c.csv
rm -f /tmp/sat-a.csv /tmp/sat-b.csv /tmp/sat-c.csv
# The same sweep with every store built as one partitioned simulation:
# byte-identical CSV at 1, 2 and 4 node-LPs. (A partitioned store models
# explicit cross-node latency, so its CSV is compared only against other
# partition counts, never against the single-engine runs above.)
go run ./cmd/loadgen -scale smoke -seed 1 -csv -node-lps 1 > /tmp/sat-p1.csv
go run ./cmd/loadgen -scale smoke -seed 1 -csv -node-lps 2 > /tmp/sat-p2.csv
cmp /tmp/sat-p1.csv /tmp/sat-p2.csv
go run ./cmd/loadgen -scale smoke -seed 1 -csv -node-lps 4 > /tmp/sat-p4.csv
cmp /tmp/sat-p1.csv /tmp/sat-p4.csv
rm -f /tmp/sat-p1.csv /tmp/sat-p2.csv /tmp/sat-p4.csv
# The same determinism contract with a cross-shard two-phase mix in
# every cell: byte-identical CSV at -parallel 1/8, on the parallel LP
# engine, and (separately, as above) at 1, 2 and 4 node-LPs.
go run ./cmd/loadgen -scale smoke -seed 1 -csv -cross-shard-pct 50 -parallel 1 > /tmp/sat-x1.csv
go run ./cmd/loadgen -scale smoke -seed 1 -csv -cross-shard-pct 50 -parallel 8 > /tmp/sat-x2.csv
cmp /tmp/sat-x1.csv /tmp/sat-x2.csv
go run ./cmd/loadgen -scale smoke -seed 1 -csv -cross-shard-pct 50 -engine parallel > /tmp/sat-x3.csv
cmp /tmp/sat-x1.csv /tmp/sat-x3.csv
rm -f /tmp/sat-x1.csv /tmp/sat-x2.csv /tmp/sat-x3.csv
go run ./cmd/loadgen -scale smoke -seed 1 -csv -cross-shard-pct 50 -node-lps 1 > /tmp/sat-xp1.csv
go run ./cmd/loadgen -scale smoke -seed 1 -csv -cross-shard-pct 50 -node-lps 2 > /tmp/sat-xp2.csv
cmp /tmp/sat-xp1.csv /tmp/sat-xp2.csv
go run ./cmd/loadgen -scale smoke -seed 1 -csv -cross-shard-pct 50 -node-lps 4 > /tmp/sat-xp4.csv
cmp /tmp/sat-xp1.csv /tmp/sat-xp4.csv
rm -f /tmp/sat-xp1.csv /tmp/sat-xp2.csv /tmp/sat-xp4.csv
go run ./cmd/loadgen -scale smoke -seed 1 > /tmp/sat-smoke.txt
skel saturation_full.txt > /tmp/sat-skel-full.txt
skel /tmp/sat-smoke.txt > /tmp/sat-skel-smoke.txt
cmp /tmp/sat-skel-full.txt /tmp/sat-skel-smoke.txt
rm -f /tmp/sat-smoke.txt /tmp/sat-skel-full.txt /tmp/sat-skel-smoke.txt

if command -v govulncheck >/dev/null 2>&1; then
	govulncheck ./...
fi
