module persistmem

go 1.22
