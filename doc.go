// Package persistmem is a full reproduction, in pure Go, of "Fast and
// Flexible Persistence: The Magic Potion for Fault-Tolerance, Scalability
// and Performance in Online Data Stores" (Mehra & Fineberg, HP, IPDPS
// 2004).
//
// The paper attaches non-volatile memory devices (NPMUs) to a ServerNet
// system-area network, manages them with a Persistent Memory Manager
// process pair, and re-points the NonStop log writer (ADP) at persistent
// memory so transactions commit at memory speed instead of disk speed.
// Because the original testbed is 2004 HP NonStop hardware, this
// repository rebuilds the entire stack as a deterministic discrete-event
// simulation: the RDMA fabric, disk models, NSK-style cluster runtime
// with process pairs, the NPMU/PMM/client-library persistent-memory
// system, a transaction-processing stack (TMF, DP2, ADP, locks, audit
// trail, recovery), the paper's hot-stock benchmark, and harnesses that
// regenerate both of the paper's figures.
//
// Start with internal/core for the assembled system, examples/quickstart
// for a first program, and cmd/figures to regenerate the evaluation. The
// architecture and experiment index live in DESIGN.md; measured results
// in EXPERIMENTS.md.
package persistmem
